"""Property-based tests (hypothesis) for the placement scheduler.

The invariants the fleet's capacity story rests on:

* placement never overcommits — no machine hosts more cores than its
  reclaimable-capacity estimate, under any strategy;
* placement is a pure function of the *set* of inputs — permuting the
  machine or demand sequences yields the identical plan;
* under first-fit, removing a machine never *increases* the total demand
  placed (capacity loss cannot conjure capacity).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.schema import PlacementSpec
from repro.fleet.placement import MachineCapacity, PlacementDemand, plan_placement


@st.composite
def placement_cases(draw):
    machine_count = draw(st.integers(min_value=1, max_value=10))
    machines = [
        MachineCapacity(f"m{index:03d}", draw(st.integers(min_value=0, max_value=24)))
        for index in range(machine_count)
    ]
    demand_count = draw(st.integers(min_value=0, max_value=14))
    demands = [
        PlacementDemand(f"j{index:03d}", draw(st.integers(min_value=1, max_value=12)))
        for index in range(demand_count)
    ]
    return machines, demands


@settings(max_examples=200, deadline=None)
@given(case=placement_cases(), strategy=st.sampled_from(PlacementSpec.VALID_STRATEGIES))
def test_no_machine_exceeds_its_reclaimable_capacity(case, strategy):
    machines, demands = case
    plan = plan_placement(machines, demands, strategy)
    capacities = {machine.machine: machine.cores for machine in machines}
    for machine, cores in plan.placed_cores_by_machine().items():
        assert cores <= capacities[machine]
    # Conservation: every demand is either assigned exactly once or unplaced.
    assigned = [assignment.job for assignment in plan.assignments]
    pending = [demand.name for demand in plan.unplaced]
    assert sorted(assigned + pending) == sorted(demand.name for demand in demands)


@settings(max_examples=200, deadline=None)
@given(
    case=placement_cases(),
    strategy=st.sampled_from(PlacementSpec.VALID_STRATEGIES),
    data=st.data(),
)
def test_placement_is_deterministic_under_input_permutation(case, strategy, data):
    machines, demands = case
    baseline = plan_placement(machines, demands, strategy)
    shuffled_machines = data.draw(st.permutations(machines))
    shuffled_demands = data.draw(st.permutations(demands))
    assert plan_placement(shuffled_machines, shuffled_demands, strategy) == baseline


@settings(max_examples=200, deadline=None)
@given(case=placement_cases(), data=st.data())
def test_removing_a_machine_never_increases_placed_demand(case, data):
    machines, demands = case
    full = plan_placement(machines, demands, "first_fit")
    removed = data.draw(st.integers(min_value=0, max_value=len(machines) - 1))
    remaining = machines[:removed] + machines[removed + 1 :]
    reduced = plan_placement(remaining, demands, "first_fit")
    assert reduced.total_placed_cores <= full.total_placed_cores
    # And the removed machine's jobs never overcommit the survivors.
    capacities = {machine.machine: machine.cores for machine in remaining}
    for machine, cores in reduced.placed_cores_by_machine().items():
        assert cores <= capacities[machine]
