"""Tests for the controller-showdown harness.

Determinism is the load-bearing property: the showdown compares controllers,
so the comparison must hold at any worker count and across repeated runs.
The flash-crowd ordering assertion pins the paper-level conclusion that a
forecast-aware controller protects the tail at least as well as blind
isolation sized for the steady state.
"""

import json

import pytest

from repro.errors import ConfigError
from repro.experiments import showdown
from repro.experiments.showdown import (
    DETAIL_COLUMNS,
    RANKING_COLUMNS,
    run_showdown,
)
from repro.runtime import ExperimentRunner, ResultCache

#: Small enough for the fast tier, long enough for a stable tail.
FAST = dict(duration=1.0, warmup=0.2, seed=5)


def fresh_runner(max_workers=1):
    return ExperimentRunner(max_workers=max_workers, cache=ResultCache())


class TestRunShowdown:
    def test_grid_shape_and_columns(self):
        result = run_showdown(
            controllers=["blind", "none"],
            workloads=["flash_crowd", "bursty"],
            runner=fresh_runner(),
            **FAST,
        )
        assert len(result.rows) == 4
        assert [(r["workload"], r["controller"]) for r in result.rows] == [
            ("flash_crowd", "blind"),
            ("flash_crowd", "none"),
            ("bursty", "blind"),
            ("bursty", "none"),
        ]
        for row in result.rows:
            assert set(DETAIL_COLUMNS) <= set(row)
        assert len(result.ranking) == 2
        for row in result.ranking:
            assert set(RANKING_COLUMNS) <= set(row)
        assert [row["rank"] for row in result.ranking] == [1, 2]

    def test_worker_count_does_not_change_the_result(self):
        serial = run_showdown(
            controllers=["blind", "mpc"],
            workloads=["flash_crowd"],
            runner=fresh_runner(max_workers=1),
            **FAST,
        )
        parallel = run_showdown(
            controllers=["blind", "mpc"],
            workloads=["flash_crowd"],
            runner=fresh_runner(max_workers=2),
            **FAST,
        )
        assert serial.rows == parallel.rows
        assert serial.ranking == parallel.ranking

    def test_oracle_protects_flash_crowd_at_least_as_well_as_blind(self):
        """Forecast-aware sizing beats steady-state blind sizing on a spike."""
        result = run_showdown(
            controllers=["blind", "oracle"],
            workloads=["flash_crowd"],
            runner=fresh_runner(),
            **FAST,
        )
        by_controller = {row["controller"]: row for row in result.rows}
        oracle_p99 = by_controller["oracle"]["p99_ms"]
        blind_p99 = by_controller["blind"]["p99_ms"]
        assert oracle_p99 <= blind_p99 * 1.05

    def test_no_isolation_never_outranks_blind_under_pressure(self):
        result = run_showdown(
            controllers=["blind", "none"],
            workloads=["flash_crowd"],
            runner=fresh_runner(),
            **FAST,
        )
        order = [row["controller"] for row in result.ranking]
        assert order.index("blind") < order.index("none")
        assert result.winner() == result.ranking[0]["controller"]

    def test_unknown_controller_is_rejected(self):
        with pytest.raises(ConfigError, match="unknown controller"):
            run_showdown(controllers=["banana"], workloads=["bursty"], **FAST)

    def test_unknown_workload_is_rejected(self):
        with pytest.raises(ConfigError, match="unknown workload"):
            run_showdown(controllers=["blind"], workloads=["banana"], **FAST)

    def test_empty_grid_is_rejected(self):
        with pytest.raises(ConfigError, match="at least one controller"):
            run_showdown(controllers=[], workloads=["bursty"], **FAST)


class TestCli:
    ARGS = [
        "--controllers",
        "blind,mpc",
        "--workloads",
        "flash_crowd",
        "--duration",
        "1",
        "--warmup",
        "0.2",
        "--seed",
        "5",
        "--workers",
        "1",
    ]

    def test_table_output(self, capsys):
        assert showdown.main([*self.ARGS, "--out", "table"]) == 0
        out = capsys.readouterr().out
        assert "Controller ranking (best first)" in out
        assert "winner:" in out
        assert "mpc" in out and "blind" in out

    def test_json_output_parses(self, capsys):
        assert showdown.main([*self.ARGS, "--out", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {row["controller"] for row in payload["rows"]} == {"blind", "mpc"}
        assert [row["rank"] for row in payload["ranking"]] == [1, 2]

    def test_csv_output_has_headers(self, capsys):
        assert showdown.main([*self.ARGS, "--out", "csv"]) == 0
        out = capsys.readouterr().out
        assert ",".join(DETAIL_COLUMNS) in out
        assert ",".join(RANKING_COLUMNS) in out

    def test_unknown_controller_exits_2(self, capsys):
        assert showdown.main(["--controllers", "banana"]) == 2
        assert "unknown controller" in capsys.readouterr().err
