"""Tests for the scenario matrix engine and its CLI."""

import json

import pytest

from repro.config.schema import FleetSpec, SecondaryJobSpec
from repro.config.validation import validate_experiment, validate_fleet
from repro.errors import ConfigError
from repro.experiments import matrix
from repro.experiments import scenarios as sc
from repro.runtime import ExperimentRunner, ResultCache

FAST = dict(qps=500.0, duration=0.5, warmup=0.1, seed=5)


class TestCatalog:
    def test_catalog_is_large_enough(self):
        names = matrix.scenario_names()
        assert len(names) >= 20

    def test_catalog_has_multi_secondary_composites(self):
        composites = [s for s in matrix.iter_scenarios() if s.multi_secondary]
        assert len(composites) >= 3
        # Composites genuinely co-locate more than one secondary job.
        for scenario in composites:
            variant = scenario.expand(**FAST)[0]
            assert len(variant.spec.secondary_jobs()) >= 2

    def test_every_scenario_expands_to_valid_specs(self):
        for scenario in matrix.iter_scenarios():
            variants = scenario.expand(**FAST)
            assert len(variants) == scenario.variant_count()
            for variant in variants:
                if scenario.kind == "fleet":
                    assert isinstance(variant.spec, FleetSpec)
                    validate_fleet(variant.spec)
                else:
                    validate_experiment(variant.spec)

    def test_fleet_scenarios_are_registered(self):
        fleet = [s for s in matrix.iter_scenarios() if s.kind == "fleet"]
        assert len(fleet) >= 4
        names = {s.name for s in fleet}
        assert {"fleet-staged-rollout", "fleet-guardrail-breach"} <= names
        # Fleet scenarios cover the new diversity axes: rollout staging,
        # placement strategy and fleet size.
        axes = {axis for s in fleet for axis in s.axis_names}
        assert {"machines", "strategy", "stages"} <= axes

    def test_trace_driven_scenarios_are_registered(self):
        trace_driven = [
            s for s in matrix.iter_scenarios() if "trace-driven" in s.tags
        ]
        assert len(trace_driven) >= 8
        names = {s.name for s in trace_driven}
        assert {
            "diurnal-cycle",
            "diurnal-trough-reclamation",
            "flash-crowd-blind-isolation",
            "bursty-blind-isolation",
            "replayed-trace-showdown",
            "replayed-trace-standalone",
        } <= names
        # Every trace-driven variant carries a time-varying arrival model.
        for scenario in trace_driven:
            for variant in scenario.expand(duration=0.5, warmup=0.1, seed=5):
                assert variant.spec.workload.arrival_kind != "constant"

    def test_every_scenario_has_description_and_tier(self):
        for scenario in matrix.iter_scenarios():
            assert scenario.description
            assert scenario.tier in ("fast", "slow")

    def test_paper_core_scenarios_are_registered(self):
        names = set(matrix.scenario_names())
        assert {
            "standalone",
            "no-isolation",
            "blind-isolation",
            "static-cores",
            "cpu-cycles",
        } <= names

    def test_duplicate_registration_is_an_error(self):
        with pytest.raises(ConfigError, match="already registered"):
            matrix.register(matrix.get_scenario("standalone"))

    def test_axis_must_match_builder_signature(self):
        with pytest.raises(ConfigError, match="does not accept"):
            matrix.Scenario(
                name="broken",
                description="axis without a parameter",
                builder=sc.standalone,
                axes=(("bogus_axis", (1, 2)),),
            )

    def test_unknown_scenario_is_an_error(self):
        with pytest.raises(ConfigError, match="unknown scenario"):
            matrix.get_scenario("does-not-exist")


class TestExpansion:
    def test_no_axes_yields_one_variant_labelled_by_name(self):
        variants = matrix.expand("standalone", **FAST)
        assert len(variants) == 1
        assert variants[0].label == "standalone"
        assert variants[0].spec.workload.qps == FAST["qps"]

    def test_axis_grid_expansion_and_labels(self):
        variants = matrix.expand("no-isolation", **FAST)
        assert [v.label for v in variants] == [
            "no-isolation[bully_threads=24]",
            "no-isolation[bully_threads=48]",
        ]
        assert [v.spec.cpu_bully.threads for v in variants] == [24, 48]

    def test_grid_override_replaces_axis_values(self):
        variants = matrix.expand("no-isolation", grid={"bully_threads": (4, 8, 12)}, **FAST)
        assert [v.spec.cpu_bully.threads for v in variants] == [4, 8, 12]

    def test_two_dimensional_grid_is_a_cartesian_product(self):
        variants = matrix.expand("colocation-grid", duration=0.5, warmup=0.1, seed=5)
        assert len(variants) == 4
        combos = {(v.spec.workload.qps, v.spec.cpu_bully.threads) for v in variants}
        assert combos == {(2000.0, 24), (2000.0, 48), (4000.0, 24), (4000.0, 48)}

    def test_unknown_grid_axis_is_an_error(self):
        with pytest.raises(ConfigError, match="no axis"):
            matrix.expand("standalone", grid={"bogus": (1,)})

    def test_unknown_common_parameter_is_an_error(self):
        with pytest.raises(ConfigError, match="unknown common parameter"):
            matrix.get_scenario("standalone").expand(bogus=1)

    def test_common_params_not_in_signature_are_skipped(self):
        # ``diurnal`` owns its QPS (the phase axis decides it); forwarding
        # qps must not crash and must not leak into the spec.
        variants = matrix.expand(
            "diurnal", qps=999.0, duration=0.5, warmup=0.1, seed=5
        )
        assert {v.spec.workload.qps for v in variants} == set(sc.DIURNAL_PHASES.values())


class TestExecution:
    def test_run_scenario_rows_in_grid_order(self):
        runner = ExperimentRunner(max_workers=1, cache=ResultCache())
        result = matrix.run_scenario("no-isolation", runner=runner, **FAST)
        rows = result.rows()
        assert [row["bully_threads"] for row in rows] == [24, 48]
        for row in rows:
            assert row["p99_ms"] > 0
            assert "progress:cpu-bully" in row

    def test_rerun_is_served_from_cache(self):
        runner = ExperimentRunner(max_workers=1, cache=ResultCache())
        first = matrix.run_scenario("standalone", runner=runner, **FAST)
        second = matrix.run_scenario("standalone", runner=runner, **FAST)
        assert first.cache_hits == 0
        assert second.cache_hits == 1
        assert first.rows() == second.rows()

    def test_results_identical_across_worker_counts(self):
        serial = matrix.run_scenario(
            "no-isolation", runner=ExperimentRunner(max_workers=1, cache=ResultCache()), **FAST
        )
        parallel = matrix.run_scenario(
            "no-isolation", runner=ExperimentRunner(max_workers=4, cache=ResultCache()), **FAST
        )
        assert serial.rows() == parallel.rows()

    def test_run_matrix_shares_one_runner(self):
        runner = ExperimentRunner(max_workers=1, cache=ResultCache())
        results = matrix.run_matrix(["standalone", "standalone"], runner=runner, **FAST)
        # The second scenario's only variant is the first one's cache entry.
        assert results[1].cache_hits == 1

    def test_multi_secondary_composite_runs_and_reports_breakdown(self):
        runner = ExperimentRunner(max_workers=1, cache=ResultCache())
        result = matrix.run_scenario(
            "mixed-bully", runner=runner, grid={"bully_threads": (24,)}, **FAST
        )
        (row,) = result.rows()
        assert row["progress:cpu-bully"] > 0
        assert row["progress:disk-bully"] > 0


class TestCli:
    def test_list_prints_catalog(self, capsys):
        assert matrix.main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "standalone" in out and "mixed-bully" in out
        assert "multi-secondary composites" in out

    def test_run_table_output(self, capsys):
        code = matrix.main(
            ["--run", "standalone", "--qps", "500", "--duration", "0.5",
             "--warmup", "0.1", "--seed", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "standalone" in out and "p99_ms" in out

    def test_run_json_output_parses(self, capsys):
        code = matrix.main(
            ["--run", "no-isolation", "--grid", "bully_threads=24", "--qps", "500",
             "--duration", "0.5", "--warmup", "0.1", "--seed", "5", "--out", "json"]
        )
        assert code == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 1
        assert rows[0]["bully_threads"] == 24

    def test_run_csv_output_has_header_and_rows(self, capsys):
        code = matrix.main(
            ["--run", "no-isolation", "--qps", "500", "--duration", "0.5",
             "--warmup", "0.1", "--seed", "5", "--out", "csv"]
        )
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("scenario,label,bully_threads")
        assert len(lines) == 3

    def test_workers_flag_matches_serial_output(self, capsys):
        argv = ["--run", "no-isolation", "--qps", "500", "--duration", "0.5",
                "--warmup", "0.1", "--seed", "5", "--out", "json"]
        assert matrix.main(argv + ["--workers", "1"]) == 0
        serial = capsys.readouterr().out
        assert matrix.main(argv + ["--workers", "4"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel

    def test_unknown_scenario_exits_nonzero(self, capsys):
        assert matrix.main(["--run", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_unknown_scenario_suggests_close_matches(self, capsys):
        assert matrix.main(["--run", "standalon"]) == 2
        err = capsys.readouterr().err
        assert "did you mean" in err
        assert "'standalone'" in err

    def test_unrecognisable_name_gets_no_suggestion(self):
        with pytest.raises(ConfigError) as excinfo:
            matrix.get_scenario("zzzzqqqq")
        assert "did you mean" not in str(excinfo.value)

    def test_seed_flag_threads_into_expanded_specs(self, capsys):
        code = matrix.main(
            ["--run", "standalone", "--qps", "500", "--duration", "0.5",
             "--warmup", "0.1", "--seed", "123", "--out", "json"]
        )
        assert code == 0
        capsys.readouterr()
        assert matrix.expand("standalone", seed=123)[0].spec.seed == 123

    def test_list_shows_fleet_scenarios(self, capsys):
        assert matrix.main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fleet-staged-rollout" in out
        assert "fleet)" in out  # the catalog footer counts fleet scenarios

    def test_bad_grid_syntax_exits_nonzero(self, capsys):
        assert matrix.main(["--run", "no-isolation", "--grid", "oops"]) == 2
        assert "--grid" in capsys.readouterr().err


class TestCliFailureIsolation:
    """One scenario blowing up mid-batch must not take the batch down."""

    @pytest.fixture()
    def boom_scenario(self):
        def boom_builder(qps=500.0, duration=0.5, warmup=0.1, seed=5):
            raise RuntimeError("injected mid-batch failure")

        matrix.register(
            matrix.Scenario(
                name="boom-test",
                description="always raises, for failure-isolation tests",
                builder=boom_builder,
            )
        )
        yield "boom-test"
        matrix._REGISTRY.pop("boom-test", None)

    def test_failure_isolated_and_partial_results_flushed(self, boom_scenario, capsys):
        code = matrix.main(
            ["--run", f"standalone,{boom_scenario}", "--qps", "500",
             "--duration", "0.5", "--warmup", "0.1", "--seed", "5"]
        )
        assert code == 1
        out = capsys.readouterr().out
        # The healthy scenario's rows were still printed in full...
        assert "standalone" in out and "p99_ms" in out
        # ...and the failure shows up once, in the error table.
        assert "1 of 2 scenarios failed" in out
        assert "RuntimeError: injected mid-batch failure" in out

    def test_failure_first_does_not_starve_later_scenarios(self, boom_scenario, capsys):
        code = matrix.main(
            ["--run", f"{boom_scenario},standalone", "--qps", "500",
             "--duration", "0.5", "--warmup", "0.1", "--seed", "5", "--out", "csv"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "standalone" in out  # ran despite the earlier crash
        assert "boom-test" in out and "RuntimeError" in out


class TestSecondaryJobSpec:
    def test_exactly_one_tenant_spec_required(self):
        from repro.config.schema import CpuBullySpec, DiskBullySpec

        with pytest.raises(ConfigError):
            SecondaryJobSpec("empty")
        with pytest.raises(ConfigError):
            SecondaryJobSpec(
                "both", cpu_bully=CpuBullySpec(), disk_bully=DiskBullySpec()
            )

    def test_kind_and_tenant_spec(self):
        from repro.config.schema import MlTrainingSpec

        job = SecondaryJobSpec("trainer", ml_training=MlTrainingSpec())
        assert job.kind == "ml_training"
        assert job.tenant_spec.threads == MlTrainingSpec().threads
        assert job.memory_bytes == MlTrainingSpec().memory_bytes

    def test_duplicate_job_names_rejected_at_validation(self):
        from repro.config.schema import CpuBullySpec

        spec = sc.standalone(**FAST).replace(
            cpu_bully=CpuBullySpec(threads=4),
            extra_secondaries=(SecondaryJobSpec("cpu-bully", cpu_bully=CpuBullySpec(threads=2)),),
        )
        with pytest.raises(ConfigError, match="unique"):
            validate_experiment(spec)

    def test_combined_bully_threads_validated(self):
        from repro.config.schema import CpuBullySpec

        spec = sc.standalone(**FAST).replace(
            cpu_bully=CpuBullySpec(threads=200),
            extra_secondaries=(
                SecondaryJobSpec("extra", cpu_bully=CpuBullySpec(threads=200)),
            ),
        )
        with pytest.raises(ConfigError, match="implausibly large"):
            validate_experiment(spec)

    def test_singleton_jobs_keep_historical_names(self):
        spec = sc.disk_bound_with_throttling(**FAST)
        assert [job.name for job in spec.secondary_jobs()] == ["disk-bully", "hdfs"]
