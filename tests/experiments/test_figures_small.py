"""Smoke tests for the per-figure harnesses on very small workloads.

The benchmark suite runs the figure harnesses at realistic scale; these tests
only verify the plumbing — that every harness produces the expected rows and
columns — so they use tiny durations and loads.
"""

import pytest

from repro.experiments import figures


@pytest.fixture(scope="module")
def fig5_small():
    return figures.fig5_blind_isolation(
        buffer_levels=(8,), qps_levels=(500.0,), duration=0.6, warmup=0.2, seed=3
    )


class TestFigureHarnessPlumbing:
    def test_fig5_rows_and_columns(self, fig5_small):
        assert fig5_small.figure_id == "fig5"
        assert len(fig5_small.rows) == 1
        row = fig5_small.rows[0]
        for column in ("workload", "qps", "p99_ms", "p99_delta_ms", "buffer_cores"):
            assert column in row
        assert row["buffer_cores"] == 8

    def test_row_lookup_helpers(self, fig5_small):
        row = fig5_small.row(workload="blind-8-buffers")
        assert row["qps"] == 500.0
        assert fig5_small.column("qps") == [500.0]
        with pytest.raises(KeyError):
            fig5_small.row(workload="missing")

    def test_headline_harness(self):
        figure = figures.headline_utilization(qps=500.0, duration=0.6, warmup=0.2, seed=3)
        assert len(figure.rows) == 2
        configs = {row["configuration"] for row in figure.rows}
        assert configs == {"standalone", "colocated+blind-isolation"}
        colocated = figure.row(configuration="colocated+blind-isolation")
        assert colocated["busy_cpu_pct"] > figure.row(configuration="standalone")["busy_cpu_pct"]

    def test_figure_from_matrix_scenario(self):
        figure = figures.figure_from_scenario(
            "no-isolation", grid={"bully_threads": (16,)},
            qps=500.0, duration=0.6, warmup=0.2, seed=3,
        )
        assert figure.figure_id == "matrix/no-isolation"
        assert len(figure.rows) == 1
        row = figure.rows[0]
        assert row["bully_threads"] == 16
        assert "p99_ms" in row and "progress:cpu-bully" in row

    def test_fig6_and_fig7_structures(self):
        fig6 = figures.fig6_static_cores(core_levels=(8,), qps_levels=(400.0,),
                                         duration=0.5, warmup=0.1, seed=2)
        assert fig6.rows[0]["secondary_cores"] == 8
        fig7 = figures.fig7_cpu_cycles(fractions=(0.25,), qps_levels=(400.0,),
                                       duration=0.5, warmup=0.1, seed=2)
        assert fig7.rows[0]["cpu_fraction_pct"] == pytest.approx(25.0)
        assert "drop_rate_pct" in fig7.rows[0]
