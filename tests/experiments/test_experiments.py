"""Tests for the experiment harnesses (scenario builders, runner, reporting)."""

import pytest

from repro.config.validation import validate_experiment
from repro.experiments import scenarios as sc
from repro.experiments.comparison import IsolationComparison
from repro.experiments.reporting import format_figure, format_table
from repro.experiments.single_machine import SingleMachineExperiment


class TestScenarioBuilders:
    def test_all_builders_produce_valid_specs(self):
        builders = [
            sc.standalone(),
            sc.no_isolation(24),
            sc.no_isolation(48),
            sc.blind_isolation(8),
            sc.blind_isolation(4),
            sc.static_cores(16),
            sc.cpu_cycles(0.25),
            sc.disk_bound_with_throttling(),
        ]
        for spec in builders:
            validate_experiment(spec)

    def test_standalone_has_no_secondary(self):
        spec = sc.standalone()
        assert spec.cpu_bully is None and spec.perfiso is None

    def test_blind_isolation_config(self):
        spec = sc.blind_isolation(buffer_cores=4, bully_threads=24)
        assert spec.perfiso.cpu_policy == "blind"
        assert spec.perfiso.blind.buffer_cores == 4
        assert spec.cpu_bully.threads == 24

    def test_cycles_config(self):
        spec = sc.cpu_cycles(0.45)
        assert spec.perfiso.cpu_policy == "cpu_cycles"
        assert spec.perfiso.cpu_cycles.cpu_fraction == pytest.approx(0.45)

    def test_disk_bound_scenario_has_io_tenants(self):
        spec = sc.disk_bound_with_throttling()
        assert spec.disk_bully is not None
        assert spec.hdfs is not None
        assert spec.perfiso.io_throttle.enabled

    def test_workload_parameters_threaded_through(self):
        spec = sc.standalone(qps=1234, duration=7.0, warmup=2.0, seed=17)
        assert spec.workload.qps == 1234
        assert spec.workload.duration == 7.0
        assert spec.seed == 17


class TestSingleMachineExperiment:
    def test_short_standalone_run_produces_sane_results(self):
        spec = sc.standalone(qps=600, duration=1.0, warmup=0.2, seed=5)
        result = SingleMachineExperiment(spec, "standalone").run()
        assert result.queries_completed > 300
        assert result.queries_dropped == 0
        assert 0 < result.latency.p50 < result.latency.p99 < 0.2
        assert 0.0 < result.cpu.primary < 0.5
        assert result.cpu.idle > 0.5
        assert result.secondary_progress == 0

    def test_results_are_reproducible_for_a_seed(self):
        spec = sc.standalone(qps=400, duration=0.8, warmup=0.2, seed=9)
        first = SingleMachineExperiment(spec, "a").run()
        second = SingleMachineExperiment(spec, "b").run()
        assert first.latency.p99 == pytest.approx(second.latency.p99)
        assert first.queries_completed == second.queries_completed

    def test_different_seeds_differ(self):
        first = SingleMachineExperiment(sc.standalone(qps=400, duration=0.8, seed=1)).run()
        second = SingleMachineExperiment(sc.standalone(qps=400, duration=0.8, seed=2)).run()
        assert first.latency.p99 != pytest.approx(second.latency.p99)

    def test_colocated_run_tracks_controller_activity(self):
        spec = sc.blind_isolation(4, bully_threads=16, qps=600, duration=1.0, warmup=0.2, seed=5)
        result = SingleMachineExperiment(spec, "blind").run()
        assert result.controller_polls > 100
        assert result.secondary_progress > 0
        assert result.cpu.secondary > 0.1
        assert result.secondary_core_history

    def test_summary_is_flat_and_complete(self):
        spec = sc.standalone(qps=400, duration=0.6, warmup=0.2, seed=5)
        summary = SingleMachineExperiment(spec).run().summary()
        for key in ("p50_ms", "p99_ms", "primary_cpu_pct", "idle_cpu_pct", "drop_rate_pct"):
            assert key in summary


class TestMultiSecondaryExperiment:
    def test_extra_secondaries_all_run_under_the_controller(self):
        from repro.config.schema import CpuBullySpec, SecondaryJobSpec

        spec = sc.blind_isolation(
            8, bully_threads=16, qps=600, duration=1.0, warmup=0.2, seed=5
        ).replace(
            extra_secondaries=(
                SecondaryJobSpec("bully-b", cpu_bully=CpuBullySpec(threads=8)),
                SecondaryJobSpec("bully-c", cpu_bully=CpuBullySpec(threads=4)),
            )
        )
        experiment = SingleMachineExperiment(spec, "three-bullies")
        result = experiment.run()
        assert [s.name for s in experiment.secondaries] == [
            "cpu-bully", "bully-b", "bully-c"
        ]
        assert set(result.secondary_breakdown) == {"cpu-bully", "bully-b", "bully-c"}
        for entry in result.secondary_breakdown.values():
            assert entry["progress"] > 0
            assert entry["cpu_seconds"] > 0
        assert result.secondary_progress == pytest.approx(
            sum(e["progress"] for e in result.secondary_breakdown.values())
        )

    def test_adding_an_extra_secondary_does_not_perturb_existing_streams(self):
        """Random streams are keyed by name, so adding an extra job cannot
        perturb anyone else's draws.  The open-loop arrival schedule is a pure
        function of the "arrivals" stream, so the submission count must be
        identical with and without the extra secondary (latency may of course
        change if the new job actually contends for cores)."""
        from repro.config.schema import CpuBullySpec, SecondaryJobSpec

        base = sc.standalone(qps=500, duration=0.8, warmup=0.2, seed=7)
        alone = SingleMachineExperiment(base, "alone").run()
        crowded = SingleMachineExperiment(
            base.replace(
                extra_secondaries=(
                    SecondaryJobSpec("guest", cpu_bully=CpuBullySpec(threads=8)),
                )
            ),
            "crowded",
        ).run()
        assert crowded.queries_submitted == alone.queries_submitted
        assert crowded.secondary_breakdown["guest"]["progress"] > 0

    def test_mixed_kind_extras(self):
        from repro.config.schema import DiskBullySpec, MlTrainingSpec, SecondaryJobSpec

        spec = sc.standalone(qps=500, duration=0.8, warmup=0.2, seed=5).replace(
            extra_secondaries=(
                SecondaryJobSpec("io-job", disk_bully=DiskBullySpec(threads=2)),
                SecondaryJobSpec("trainer", ml_training=MlTrainingSpec(threads=8)),
            )
        )
        result = SingleMachineExperiment(spec, "mixed").run()
        assert result.secondary_breakdown["io-job"]["progress"] > 0
        assert result.secondary_breakdown["trainer"]["progress"] > 0


class TestIsolationComparison:
    def test_selected_approaches_only(self):
        comparison = IsolationComparison(qps=500, duration=0.8, warmup=0.2, seed=4,
                                         bully_threads=16)
        result = comparison.run(["standalone", "no_isolation", "blind_isolation"])
        assert [row.approach for row in result.rows] == [
            "standalone", "no_isolation", "blind_isolation"
        ]
        relative = result.relative_progress()
        assert relative["no_isolation"] == pytest.approx(1.0)
        assert 0 < relative["blind_isolation"] <= 1.05
        table = result.as_table()
        assert len(table) == 3

    def test_unknown_approach_rejected(self):
        comparison = IsolationComparison(qps=500, duration=0.5)
        with pytest.raises(KeyError):
            comparison.run(["warp_drive"])


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 3.25}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "b" in lines[0]

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_figure_includes_notes(self):
        text = format_figure("Fig X", [{"x": 1}], notes=["a note"])
        assert "Fig X" in text and "a note" in text

    def test_large_numbers_comma_separated(self):
        text = format_table([{"count": 12345.0}])
        assert "12,345" in text
