"""Golden-metrics regression suite for the core paper scenarios.

Every case is a short, seeded single-machine run whose full metrics dictionary
is pinned against a checked-in JSON file under ``tests/experiments/goldens/``.
The simulator is deterministic per seed, so any diff here means the simulated
*numbers* moved — a refactor that was supposed to be behaviour-preserving
was not, or a model change landed without acknowledging its effect.

When a change intentionally moves the numbers, regenerate the files and review
the diff like any other code change:

    python -m pytest tests/experiments/test_goldens.py --update-goldens

Floats are compared at rel=1e-9 (not bit-exactly) so a different BLAS/SIMD
build of numpy cannot fail the suite, while anything a human would call a
drift still does.
"""

import json
from pathlib import Path

import pytest

from repro.experiments import scenarios as sc
from repro.experiments.single_machine import SingleMachineExperiment
from repro.runtime.spec_hash import spec_hash

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: Shared workload shape: short enough for the fast tier, long enough that
#: tail percentiles are stable.
GOLDEN_PARAMS = dict(qps=600.0, duration=1.0, warmup=0.2, seed=5)

#: The trace-driven builders own their rates, so the golden runs scale the
#: rate parameters down explicitly instead of passing ``qps``.
SHORT = dict(duration=1.0, warmup=0.2, seed=5)

CASES = {
    "standalone": lambda: sc.standalone(**GOLDEN_PARAMS),
    "no-isolation-mid": lambda: sc.no_isolation(sc.MID_BULLY_THREADS, **GOLDEN_PARAMS),
    "no-isolation-high": lambda: sc.no_isolation(sc.HIGH_BULLY_THREADS, **GOLDEN_PARAMS),
    "blind-isolation-mid": lambda: sc.blind_isolation(
        8, sc.MID_BULLY_THREADS, **GOLDEN_PARAMS
    ),
    "blind-isolation-high": lambda: sc.blind_isolation(
        8, sc.HIGH_BULLY_THREADS, **GOLDEN_PARAMS
    ),
    "static-cores-high": lambda: sc.static_cores(8, sc.HIGH_BULLY_THREADS, **GOLDEN_PARAMS),
    "cpu-cycles-high": lambda: sc.cpu_cycles(0.05, sc.HIGH_BULLY_THREADS, **GOLDEN_PARAMS),
    # --------------------------------------------- trace-driven workloads
    "diurnal-cycle": lambda: sc.diurnal_cycle(
        phase_offset=0.0, peak_qps=900.0, trough_qps=300.0, **SHORT
    ),
    "diurnal-trough": lambda: sc.diurnal_trough_reclamation(
        buffer_cores=8, peak_qps=900.0, trough_qps=300.0, **SHORT
    ),
    "flash-crowd-blind": lambda: sc.flash_crowd_blind_isolation(
        spike_qps=1500.0, base_qps=500.0, **SHORT
    ),
    "flash-crowd-none": lambda: sc.flash_crowd_no_isolation(
        spike_qps=1500.0, base_qps=500.0, **SHORT
    ),
    "bursty-blind": lambda: sc.bursty_blind_isolation(
        burst_qps=1500.0, base_qps=500.0, **SHORT
    ),
    "bursty-none": lambda: sc.bursty_no_isolation(
        burst_qps=1500.0, base_qps=500.0, **SHORT
    ),
    "trace-showdown-blind": lambda: sc.replayed_trace_showdown(
        policy="blind", base_qps=500.0, burst_qps=1500.0, **SHORT
    ),
    "trace-showdown-none": lambda: sc.replayed_trace_showdown(
        policy="none", base_qps=500.0, burst_qps=1500.0, **SHORT
    ),
    "trace-standalone": lambda: sc.replayed_trace_standalone(
        peak_qps=900.0, trough_qps=300.0, **SHORT
    ),
    # ------------------------------------------- dynamic controller arena
    "controller-pid": lambda: sc.controller_showdown(
        policy="pid", workload="flash_crowd", base_qps=500.0, peak_qps=1500.0, **SHORT
    ),
    "controller-mpc": lambda: sc.controller_showdown(
        policy="mpc", workload="bursty", base_qps=500.0, peak_qps=1500.0, **SHORT
    ),
    "controller-utilization": lambda: sc.controller_showdown(
        policy="utilization", workload="diurnal", base_qps=500.0, peak_qps=1500.0, **SHORT
    ),
    "controller-oracle": lambda: sc.controller_showdown(
        policy="oracle", workload="trace", base_qps=500.0, peak_qps=1500.0, **SHORT
    ),
    # ------------------------------------------------ chaos fault injection
    "chaos-controller-crash": lambda: sc.chaos_controller_crash(**GOLDEN_PARAMS),
    "chaos-telemetry-missing": lambda: sc.chaos_telemetry_dropout(
        mode="missing", **GOLDEN_PARAMS
    ),
    "chaos-telemetry-frozen": lambda: sc.chaos_telemetry_dropout(
        mode="frozen", **GOLDEN_PARAMS
    ),
    "chaos-degraded-cores": lambda: sc.chaos_degraded_cores(
        slowdown=1.5, **GOLDEN_PARAMS
    ),
}


def run_case(case: str) -> dict:
    spec = CASES[case]()
    result = SingleMachineExperiment(spec, scenario=case).run()
    metrics = dict(result.summary())
    metrics.update(
        queries_submitted=result.queries_submitted,
        queries_completed=result.queries_completed,
        queries_dropped=result.queries_dropped,
        secondary_cpu_seconds=result.secondary_cpu_seconds,
        controller_polls=result.controller_polls,
        controller_updates=result.controller_updates,
    )
    for name, entry in sorted(result.secondary_breakdown.items()):
        metrics[f"progress:{name}"] = entry["progress"]
        metrics[f"cpu_seconds:{name}"] = entry["cpu_seconds"]
    return {"case": case, "spec_hash": spec_hash(spec), "metrics": metrics}


@pytest.mark.parametrize("case", sorted(CASES))
def test_golden_metrics(case, update_goldens):
    golden_path = GOLDEN_DIR / f"{case}.json"
    observed = run_case(case)

    if update_goldens:
        GOLDEN_DIR.mkdir(exist_ok=True)
        golden_path.write_text(json.dumps(observed, indent=2, sort_keys=True) + "\n")
        return

    assert golden_path.is_file(), (
        f"missing golden file {golden_path.name}; generate it with "
        f"`python -m pytest {__file__} --update-goldens` and commit the result"
    )
    golden = json.loads(golden_path.read_text())

    assert observed["spec_hash"] == golden["spec_hash"], (
        f"{case}: the scenario's spec changed (its hash no longer matches the "
        "golden); if intentional, re-run with --update-goldens and commit"
    )
    assert set(observed["metrics"]) == set(golden["metrics"]), (
        f"{case}: metric keys changed; if intentional, re-run with --update-goldens"
    )
    for key, expected in golden["metrics"].items():
        value = observed["metrics"][key]
        if isinstance(expected, float):
            assert value == pytest.approx(expected, rel=1e-9, abs=1e-12), (
                f"{case}: metric {key!r} drifted from the golden value "
                f"({value!r} != {expected!r}); if intentional, re-run with "
                "--update-goldens and commit the diff"
            )
        else:
            assert value == expected, (
                f"{case}: metric {key!r} changed ({value!r} != {expected!r})"
            )


def test_golden_files_have_no_strays():
    """Every checked-in golden corresponds to a defined case (and vice versa)."""
    files = {path.stem for path in GOLDEN_DIR.glob("*.json")}
    assert files == set(CASES), (
        f"golden files and cases diverge: extra={sorted(files - set(CASES))}, "
        f"missing={sorted(set(CASES) - files)}"
    )
