"""Tests for latency statistics, CPU breakdowns and time series."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.metrics.cpu import CpuBreakdown
from repro.metrics.latency import LatencyCollector, LatencyStats, ReservoirCollector, merge_stats
from repro.metrics.timeseries import TimeSeries, TimeSeriesSet


class TestLatencyCollector:
    def test_percentiles_of_known_distribution(self):
        collector = LatencyCollector()
        collector.extend([i / 1000.0 for i in range(1, 1001)])
        stats = collector.stats()
        assert stats.count == 1000
        assert stats.p50 == pytest.approx(0.5, rel=0.01)
        assert stats.p99 == pytest.approx(0.99, rel=0.01)
        assert stats.maximum == pytest.approx(1.0)

    def test_warmup_samples_excluded(self):
        collector = LatencyCollector(warmup_end=1.0)
        collector.record(0.5, 0.010)
        collector.record(2.0, 0.020)
        stats = collector.stats()
        assert stats.count == 1
        assert stats.p50 == pytest.approx(0.020)

    def test_drops_counted_after_warmup_only(self):
        collector = LatencyCollector(warmup_end=1.0)
        collector.record_drop(0.5)
        collector.record_drop(2.0)
        assert collector.dropped == 1
        assert collector.stats().drop_rate == pytest.approx(1.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ExperimentError):
            LatencyCollector().record(1.0, -0.001)

    def test_empty_collector_stats(self):
        stats = LatencyCollector().stats()
        assert stats.count == 0
        assert stats.p99 == 0.0

    def test_as_millis_conversion(self):
        collector = LatencyCollector()
        collector.extend([0.004, 0.012])
        millis = collector.stats().as_millis()
        assert millis["max_ms"] == pytest.approx(12.0)

    def test_percentile_helper(self):
        collector = LatencyCollector()
        collector.extend([0.001, 0.002, 0.003])
        assert collector.percentile(50) == pytest.approx(0.002)


class TestReservoirCollector:
    def test_small_streams_kept_exactly(self):
        reservoir = ReservoirCollector(capacity=100)
        for value in np.linspace(0.001, 0.1, 50):
            reservoir.record(float(value))
        assert reservoir.stats().count == 50

    def test_bounded_memory_on_long_streams(self):
        reservoir = ReservoirCollector(capacity=200, seed=1)
        for value in np.random.default_rng(0).exponential(0.01, size=20_000):
            reservoir.record(float(value))
        stats = reservoir.stats()
        assert stats.count == 200
        assert reservoir.seen == 20_000
        # The reservoir's median approximates the true median (~6.9 ms).
        assert stats.p50 == pytest.approx(0.0069, rel=0.4)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ExperimentError):
            ReservoirCollector(capacity=0)

    def test_extend_below_capacity_kept_exactly(self):
        reservoir = ReservoirCollector(capacity=100)
        values = np.linspace(0.001, 0.1, 60)
        reservoir.extend(values)
        assert reservoir.seen == 60
        stats = reservoir.stats()
        assert stats.count == 60
        assert stats.maximum == pytest.approx(0.1)

    def test_extend_matches_record_distribution(self):
        """Bulk extend keeps an unbiased sample, like per-value record."""
        stream = np.random.default_rng(0).exponential(0.01, size=20_000)
        bulk = ReservoirCollector(capacity=200, seed=1)
        bulk.extend(stream)
        assert bulk.seen == 20_000
        stats = bulk.stats()
        assert stats.count == 200
        # Same tolerance as the per-record long-stream test above.
        assert stats.p50 == pytest.approx(0.0069, rel=0.4)

    def test_extend_in_chunks_equals_one_stream_length(self):
        reservoir = ReservoirCollector(capacity=50, seed=2)
        chunks = np.random.default_rng(1).exponential(0.01, size=1000).reshape(10, 100)
        for chunk in chunks:
            reservoir.extend(chunk)
        assert reservoir.seen == 1000
        assert reservoir.stats().count == 50

    def test_extend_rejects_negative_latency(self):
        reservoir = ReservoirCollector(capacity=10)
        with pytest.raises(ExperimentError):
            reservoir.extend([0.001, -0.002])


class TestMergeStats:
    def test_weighted_merge(self):
        a = LatencyStats(count=100, dropped=0, mean=0.01, p50=0.01, p95=0.02, p99=0.03,
                         p999=0.04, maximum=0.05)
        b = LatencyStats(count=300, dropped=3, mean=0.02, p50=0.02, p95=0.03, p99=0.05,
                         p999=0.06, maximum=0.08)
        merged = merge_stats([a, b])
        assert merged.count == 400
        assert merged.dropped == 3
        assert merged.mean == pytest.approx(0.0175)
        assert merged.maximum == 0.08

    def test_empty_merge(self):
        assert merge_stats([]).count == 0


class TestCpuBreakdown:
    def test_from_utilization(self):
        breakdown = CpuBreakdown.from_utilization(
            {"primary": 0.2, "secondary": 0.5, "os": 0.05, "idle": 0.25}
        )
        assert breakdown.busy == pytest.approx(0.75)
        assert breakdown.as_percent()["idle_pct"] == pytest.approx(25.0)

    def test_missing_categories_default_to_zero(self):
        breakdown = CpuBreakdown.from_utilization({"idle": 1.0})
        assert breakdown.primary == 0.0
        assert breakdown.busy == 0.0


class TestTimeSeries:
    def test_append_and_summaries(self):
        series = TimeSeries("qps")
        for i in range(10):
            series.append(float(i), float(i * 10))
        assert len(series) == 10
        assert series.mean() == pytest.approx(45.0)
        assert series.maximum() == 90.0
        assert series.percentile(50) == pytest.approx(45.0)

    def test_out_of_order_append_rejected(self):
        series = TimeSeries("qps")
        series.append(1.0, 1.0)
        with pytest.raises(ExperimentError):
            series.append(0.5, 2.0)

    def test_resample_averages_buckets(self):
        series = TimeSeries("util")
        for i in range(100):
            series.append(i * 0.1, float(i % 2))
        resampled = series.resample(1.0)
        assert len(resampled) < len(series)
        assert resampled.mean() == pytest.approx(0.5, abs=0.1)

    def test_resample_rejects_bad_bucket(self):
        with pytest.raises(ExperimentError):
            TimeSeries("x").resample(0)

    def test_timeseries_set_alignment(self):
        series_set = TimeSeriesSet()
        series_set.series("a").append(0.0, 1.0)
        series_set.series("a").append(1.0, 2.0)
        series_set.series("b").append(0.5, 5.0)
        table = series_set.as_table()
        assert len(table) == 3
        assert set(series_set.names()) == {"a", "b"}
