"""Tests for the exactly-mergeable latency digest."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.metrics.latency import LatencyDigest


def samples(seed, size=5000, scale=0.004):
    return np.random.default_rng(seed).lognormal(mean=np.log(scale), sigma=0.8, size=size)


class TestMergeExactness:
    def test_merged_shards_equal_single_digest_of_union(self):
        parts = [samples(seed) for seed in range(5)]
        union = LatencyDigest.from_samples(np.concatenate(parts))
        shards = [LatencyDigest.from_samples(part) for part in parts]
        merged = LatencyDigest.merged(shards)
        assert merged.count == union.count
        assert merged.maximum == union.maximum
        assert merged.stats() == union.stats()

    def test_merge_order_is_irrelevant(self):
        parts = [LatencyDigest.from_samples(samples(seed)) for seed in range(4)]
        forward = LatencyDigest.merged(parts)
        backward = LatencyDigest.merged(list(reversed(parts)))
        assert forward.stats() == backward.stats()

    def test_merging_an_empty_digest_is_identity(self):
        digest = LatencyDigest.from_samples(samples(0))
        before = digest.stats()
        digest.merge(LatencyDigest())
        assert digest.stats() == before

    def test_merged_of_nothing_is_empty(self):
        assert LatencyDigest.merged([]).count == 0

    def test_incompatible_grids_refuse_to_merge(self):
        with pytest.raises(ExperimentError, match="grids"):
            LatencyDigest(bins=128).merge(LatencyDigest(bins=256))


class TestAccuracy:
    def test_percentiles_close_to_exact_empirical_values(self):
        values = samples(7, size=50_000)
        digest = LatencyDigest.from_samples(values)
        for q in (50.0, 95.0, 99.0):
            exact = float(np.percentile(values, q))
            approx = digest.percentile(q)
            # Geometric bins are ~3 % wide; the midpoint is within half that.
            assert approx == pytest.approx(exact, rel=0.05)

    def test_mean_and_max_are_exact(self):
        values = samples(11)
        digest = LatencyDigest.from_samples(values)
        stats = digest.stats()
        assert stats.mean == pytest.approx(float(values.mean()), rel=1e-12)
        assert stats.maximum == float(values.max())
        assert stats.count == values.size

    def test_percentile_never_exceeds_observed_max(self):
        digest = LatencyDigest.from_samples([0.001, 0.002, 1000.0])  # overflow bin
        assert digest.percentile(99.9) <= digest.maximum


class TestEdges:
    def test_empty_digest_stats(self):
        digest = LatencyDigest()
        assert digest.percentile(99.0) == 0.0
        stats = digest.stats()
        assert stats.count == 0 and stats.p99 == 0.0

    def test_underflow_and_overflow_are_counted(self):
        digest = LatencyDigest(bins=8, lowest=1e-3, highest=1.0)
        digest.add([1e-6, 0.5, 100.0])
        assert digest.count == 3
        assert digest.maximum == 100.0

    def test_drops_are_tracked_and_merged(self):
        a = LatencyDigest()
        a.record_drop(2)
        b = LatencyDigest()
        b.record_drop()
        a.merge(b)
        assert a.dropped == 3
        assert a.stats().dropped == 3

    def test_negative_samples_rejected(self):
        with pytest.raises(ExperimentError):
            LatencyDigest().add([-0.1])

    def test_invalid_grid_rejected(self):
        with pytest.raises(ExperimentError):
            LatencyDigest(bins=0)
        with pytest.raises(ExperimentError):
            LatencyDigest(lowest=1.0, highest=0.5)

    def test_copy_is_independent(self):
        digest = LatencyDigest.from_samples(samples(3))
        clone = digest.copy()
        clone.add(samples(4))
        assert clone.count != digest.count


class TestPercentileEdgeCases:
    def test_all_samples_in_the_underflow_bin(self):
        digest = LatencyDigest(bins=8, lowest=1e-3, highest=1.0)
        digest.add([1e-6, 1e-5, 1e-4])
        # The underflow bin resolves to the grid's lower bound, capped by
        # the true maximum so the percentile never exceeds an observed value.
        assert digest.percentile(50.0) == pytest.approx(1e-4)
        assert digest.percentile(99.0) == pytest.approx(1e-4)

    def test_all_samples_in_the_overflow_bin(self):
        digest = LatencyDigest(bins=8, lowest=1e-3, highest=1.0)
        digest.add([10.0, 20.0, 30.0])
        # The overflow bin resolves to the exact tracked maximum.
        assert digest.percentile(99.0) == 30.0

    def test_percentile_zero_and_one_hundred(self):
        digest = LatencyDigest.from_samples(samples(13))
        assert 0.0 < digest.percentile(0.0) <= digest.percentile(100.0)
        assert digest.percentile(100.0) <= digest.maximum

    def test_single_sample_is_every_percentile(self):
        digest = LatencyDigest.from_samples([0.004])
        for q in (0.0, 50.0, 99.0, 100.0):
            assert digest.percentile(q) == pytest.approx(0.004, rel=0.03)


class TestAddCounts:
    def binned(self, values, digest):
        values = np.asarray(values, dtype=np.float64)
        indices = np.searchsorted(digest.edges, values, side="right")
        return np.bincount(indices, minlength=digest.counts_size)

    def test_add_counts_matches_add_exactly(self):
        values = samples(21)
        via_add = LatencyDigest.from_samples(values)
        via_counts = LatencyDigest()
        via_counts.add_counts(
            self.binned(values, via_counts), float(values.sum()), float(values.max())
        )
        assert via_counts.count == via_add.count
        assert via_counts.maximum == via_add.maximum
        assert via_counts.stats() == via_add.stats()

    def test_zero_counts_are_a_no_op(self):
        digest = LatencyDigest()
        digest.add_counts(np.zeros(digest.counts_size, dtype=np.int64), 0.0, -1.0)
        assert digest.count == 0 and digest.maximum == 0.0

    def test_wrong_shape_rejected(self):
        digest = LatencyDigest()
        with pytest.raises(ExperimentError, match="shape"):
            digest.add_counts(np.ones(3, dtype=np.int64), 1.0, 1.0)

    def test_non_integral_counts_rejected(self):
        digest = LatencyDigest()
        with pytest.raises(ExperimentError, match="integral"):
            digest.add_counts(np.ones(digest.counts_size, dtype=np.float64), 1.0, 1.0)

    def test_negative_counts_rejected(self):
        digest = LatencyDigest()
        counts = np.zeros(digest.counts_size, dtype=np.int64)
        counts[3] = -1
        counts[4] = 2
        with pytest.raises(ExperimentError, match="non-negative"):
            digest.add_counts(counts, 1.0, 1.0)

    def test_negative_maximum_rejected(self):
        digest = LatencyDigest()
        counts = np.zeros(digest.counts_size, dtype=np.int64)
        counts[3] = 1
        with pytest.raises(ExperimentError, match="negative latency"):
            digest.add_counts(counts, 1.0, -0.5)

    def test_edges_view_is_read_only(self):
        digest = LatencyDigest()
        with pytest.raises(ValueError):
            digest.edges[0] = 0.0
