"""Tests for the network interface model."""

import pytest

from repro.config.schema import NicSpec
from repro.errors import ResourceError
from repro.hardware.nic import NetworkInterface
from repro.units import MB


@pytest.fixture
def nic(engine):
    return NetworkInterface(engine, NicSpec(bandwidth_bytes_per_s=100 * MB, base_latency=1e-5))


class TestNetworkInterface:
    def test_send_completes(self, engine, nic):
        done = []
        nic.send("svc", 1500, callback=lambda: done.append(engine.now))
        engine.run()
        assert len(done) == 1
        assert nic.bytes_sent["svc"] == 1500
        assert nic.packets_sent["svc"] == 1

    def test_high_priority_served_before_low(self, engine, nic):
        order = []
        # Saturate the link with a large low-priority transfer, then queue one
        # of each priority: the high one must win.
        nic.send("bulk", 10 * MB, priority=nic.LOW)
        nic.send("bulk", 1 * MB, priority=nic.LOW, callback=lambda: order.append("low"))
        nic.send("svc", 1500, priority=nic.HIGH, callback=lambda: order.append("high"))
        engine.run()
        assert order[0] == "high"

    def test_low_priority_rate_limit_slows_bulk(self, engine, nic):
        finishes = []
        nic.set_low_priority_rate_limit(1 * MB)
        for _ in range(3):
            nic.send("bulk", 1 * MB, priority=nic.LOW, callback=lambda: finishes.append(engine.now))
        engine.run()
        # 3 MB at 1 MB/s must take roughly three seconds, far more than the
        # unthrottled transfer time (~30 ms at link speed).
        assert finishes[-1] > 1.5

    def test_rate_limit_can_be_removed(self, engine, nic):
        nic.set_low_priority_rate_limit(1 * MB)
        nic.set_low_priority_rate_limit(None)
        finishes = []
        for _ in range(3):
            nic.send("bulk", 1 * MB, priority=nic.LOW, callback=lambda: finishes.append(engine.now))
        engine.run()
        assert finishes[-1] < 0.5

    def test_invalid_priority_rejected(self, nic):
        with pytest.raises(ResourceError):
            nic.send("svc", 100, priority="urgent")

    def test_invalid_size_rejected(self, nic):
        with pytest.raises(ResourceError):
            nic.send("svc", 0)

    def test_invalid_rate_limit_rejected(self, nic):
        with pytest.raises(ResourceError):
            nic.set_low_priority_rate_limit(0)

    def test_busy_time_accumulates(self, engine, nic):
        nic.send("svc", 1 * MB)
        engine.run()
        assert nic.busy_time > 0
