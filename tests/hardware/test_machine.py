"""Tests for the machine container."""

import pytest

from repro.config.schema import MachineSpec
from repro.errors import ResourceError
from repro.hardware.machine import Machine


class TestMachine:
    def test_default_machine_matches_paper(self, engine):
        machine = Machine(engine, MachineSpec(), name="node")
        assert machine.logical_cores == 48
        assert machine.memory.capacity_bytes == 128 * 1024**3
        assert set(machine.volumes) == {"ssd", "hdd"}

    def test_volume_lookup(self, engine):
        machine = Machine(engine, MachineSpec())
        assert machine.volume("ssd") is machine.ssd
        assert machine.volume("hdd") is machine.hdd

    def test_unknown_volume_rejected(self, engine):
        machine = Machine(engine, MachineSpec())
        with pytest.raises(ResourceError):
            machine.volume("nvme")

    def test_ssd_and_hdd_have_expected_performance_gap(self, engine):
        machine = Machine(engine, MachineSpec())
        ssd_latency = machine.ssd.disks[0].service_time(64 * 1024)
        hdd_latency = machine.hdd.disks[0].service_time(64 * 1024)
        assert hdd_latency > 10 * ssd_latency

    def test_machine_name(self, engine):
        machine = Machine(engine, MachineSpec(), name="index-r0-p3")
        assert machine.name == "index-r0-p3"
