"""Tests for disk devices and striped volumes."""

import pytest

from repro.config.schema import DiskSpec, VolumeSpec
from repro.errors import ResourceError
from repro.hardware.disk import DiskDevice, StripedVolume
from repro.units import MB


def make_volume(engine, count=4, kind="ssd", stripe=64 * 1024):
    disk = DiskSpec(kind=kind, base_latency=1e-4, bandwidth_bytes_per_s=100 * MB, max_queue_depth=2)
    return StripedVolume(engine, VolumeSpec(name=kind, disk=disk, count=count, stripe_bytes=stripe))


class TestDiskDevice:
    def test_service_time_scales_with_size(self, engine):
        disk = DiskDevice(engine, DiskSpec(base_latency=1e-3, bandwidth_bytes_per_s=1e6), "d0")
        assert disk.service_time(1000) == pytest.approx(2e-3)
        assert disk.service_time(2000) > disk.service_time(1000)

    def test_completion_callback_fires(self, engine):
        disk = DiskDevice(engine, DiskSpec(), "d0")
        done = []
        disk.submit_chunk(4096, "read", lambda delay: done.append(delay))
        engine.run()
        assert len(done) == 1
        assert disk.completed_requests == 1
        assert disk.bytes_read == 4096

    def test_queueing_beyond_depth(self, engine):
        spec = DiskSpec(base_latency=1e-3, bandwidth_bytes_per_s=1e9, max_queue_depth=1)
        disk = DiskDevice(engine, spec, "d0")
        delays = []
        for _ in range(3):
            disk.submit_chunk(1024, "write", lambda delay: delays.append(delay))
        assert disk.queue_depth == 2
        engine.run()
        assert len(delays) == 3
        # Later requests waited for earlier ones.
        assert delays[-1] > 0

    def test_invalid_op_rejected(self, engine):
        disk = DiskDevice(engine, DiskSpec(), "d0")
        with pytest.raises(ResourceError):
            disk.submit_chunk(1024, "append", lambda delay: None)


class TestStripedVolume:
    def test_small_request_single_chunk(self, engine):
        volume = make_volume(engine)
        done = []
        volume.submit("svc", "primary", "read", 4096, callback=lambda r: done.append(r))
        engine.run()
        assert len(done) == 1
        assert done[0].latency is not None and done[0].latency > 0
        assert volume.completed_requests == 1

    def test_large_request_striped_across_disks(self, engine):
        volume = make_volume(engine, count=4)
        done = []
        volume.submit("svc", "primary", "write", 1024 * 1024, callback=lambda r: done.append(r))
        engine.run()
        assert len(done) == 1
        busy_disks = [d for d in volume.disks if d.completed_requests > 0]
        assert len(busy_disks) == 4

    def test_striping_is_faster_than_single_disk(self, engine):
        striped = make_volume(engine, count=4)
        single = make_volume(engine, count=1)
        results = {}
        striped.submit("svc", "primary", "read", 4 * 1024 * 1024,
                       callback=lambda r: results.__setitem__("striped", r.latency))
        single.submit("svc", "primary", "read", 4 * 1024 * 1024,
                      callback=lambda r: results.__setitem__("single", r.latency))
        engine.run()
        assert results["striped"] < results["single"]

    def test_category_accounting(self, engine):
        volume = make_volume(engine)
        volume.submit("a", "primary", "read", 4096)
        volume.submit("b", "secondary", "write", 8192)
        engine.run()
        assert volume.completed_by_category == {"primary": 1, "secondary": 1}
        assert volume.bytes_by_category["secondary"] == 8192

    def test_invalid_size_rejected(self, engine):
        volume = make_volume(engine)
        with pytest.raises(ResourceError):
            volume.submit("svc", "primary", "read", 0)

    def test_round_robin_spreads_small_requests(self, engine):
        volume = make_volume(engine, count=2)
        for _ in range(4):
            volume.submit("svc", "primary", "read", 1024)
        engine.run()
        counts = [d.completed_requests for d in volume.disks]
        assert counts == [2, 2]
