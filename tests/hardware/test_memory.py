"""Tests for the memory subsystem."""

import pytest

from repro.errors import ResourceError
from repro.hardware.memory import MemorySubsystem


class TestMemorySubsystem:
    def test_initial_state(self):
        memory = MemorySubsystem(1000)
        assert memory.capacity_bytes == 1000
        assert memory.used_bytes == 0
        assert memory.free_bytes == 1000

    def test_allocate_and_release(self):
        memory = MemorySubsystem(1000)
        memory.allocate("svc", 400)
        assert memory.used_bytes == 400
        assert memory.usage_of("svc") == 400
        memory.release("svc", 150)
        assert memory.usage_of("svc") == 250

    def test_allocate_beyond_capacity_rejected(self):
        memory = MemorySubsystem(1000)
        with pytest.raises(ResourceError):
            memory.allocate("svc", 2000)

    def test_overcommit_flag_allows_over_allocation(self):
        memory = MemorySubsystem(1000)
        memory.allocate("svc", 2000, allow_overcommit=True)
        assert memory.free_bytes == -1000

    def test_release_more_than_held_rejected(self):
        memory = MemorySubsystem(1000)
        memory.allocate("svc", 100)
        with pytest.raises(ResourceError):
            memory.release("svc", 200)

    def test_release_all(self):
        memory = MemorySubsystem(1000)
        memory.allocate("svc", 300)
        assert memory.release_all("svc") == 300
        assert memory.usage_of("svc") == 0
        assert memory.release_all("missing") == 0

    def test_owners_snapshot(self):
        memory = MemorySubsystem(1000)
        memory.allocate("a", 100)
        memory.allocate("b", 200)
        assert memory.owners() == {"a": 100, "b": 200}

    def test_negative_allocation_rejected(self):
        with pytest.raises(ResourceError):
            MemorySubsystem(1000).allocate("svc", -5)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ResourceError):
            MemorySubsystem(0)

    def test_full_release_removes_owner(self):
        memory = MemorySubsystem(100)
        memory.allocate("svc", 50)
        memory.release("svc", 50)
        assert "svc" not in memory.owners()
