"""Tests for the CPU topology model."""

import pytest

from repro.config.schema import MachineSpec
from repro.errors import ConfigError
from repro.hardware.topology import CpuTopology


class TestCpuTopology:
    def test_paper_machine_counts(self):
        topology = CpuTopology.from_spec(MachineSpec())
        assert topology.logical_core_count == 48
        assert topology.physical_core_count == 24
        assert topology.sockets == 2

    def test_all_core_ids(self):
        topology = CpuTopology(1, 2, 2)
        assert topology.all_core_ids() == frozenset(range(4))

    def test_siblings_share_physical_core(self):
        topology = CpuTopology(1, 2, 2)
        assert topology.siblings(0) == (0, 1)
        assert topology.siblings(1) == (0, 1)
        assert topology.siblings(2) == (2, 3)

    def test_core_info_fields(self):
        topology = CpuTopology(2, 2, 2)
        info = topology.core_info(5)
        assert info.core_id == 5
        assert 0 <= info.socket < 2
        assert info.smt_index in (0, 1)

    def test_core_info_out_of_range(self):
        with pytest.raises(ConfigError):
            CpuTopology(1, 2, 2).core_info(99)

    def test_cores_on_socket(self):
        topology = CpuTopology(2, 3, 2)
        first = topology.cores_on_socket(0)
        second = topology.cores_on_socket(1)
        assert len(first) == 6 and len(second) == 6
        assert set(first).isdisjoint(second)

    def test_cores_on_bad_socket(self):
        with pytest.raises(ConfigError):
            CpuTopology(1, 2, 2).cores_on_socket(5)

    def test_invalid_dimensions(self):
        with pytest.raises(ConfigError):
            CpuTopology(0, 1, 1)

    def test_secondary_allocation_order_starts_at_top(self):
        topology = CpuTopology(1, 4, 2)
        order = topology.secondary_allocation_order()
        assert len(order) == 8
        assert order[0] == 7
        # Whole physical cores come out together.
        assert set(order[:2]) == set(topology.siblings(7))

    def test_secondary_allocation_order_covers_all_cores(self):
        topology = CpuTopology.from_spec(MachineSpec())
        order = topology.secondary_allocation_order()
        assert sorted(order) == list(range(48))


class TestMasks:
    def test_mask_round_trip(self):
        topology = CpuTopology(1, 4, 2)
        ids = [0, 3, 5]
        mask = topology.mask_from_ids(ids)
        assert topology.ids_from_mask(mask) == frozenset(ids)

    def test_mask_rejects_unknown_core(self):
        topology = CpuTopology(1, 2, 1)
        with pytest.raises(ConfigError):
            topology.mask_from_ids([10])

    def test_ids_from_mask_rejects_out_of_range_bits(self):
        topology = CpuTopology(1, 2, 1)
        with pytest.raises(ConfigError):
            topology.ids_from_mask(1 << 10)

    def test_negative_mask_rejected(self):
        with pytest.raises(ConfigError):
            CpuTopology(1, 2, 1).ids_from_mask(-1)

    def test_empty_mask(self):
        assert CpuTopology(1, 2, 1).ids_from_mask(0) == frozenset()
