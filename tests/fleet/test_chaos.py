"""End-to-end fleet chaos: machine churn + controller crash + flaky pushes.

The acceptance story of the fault-injection PR, pinned as tests: a fleet
rollout with injected machine crashes and a coordinator crash mid-stage
completes *deterministically* — the crashed stage fails safe (its guardrail
digest is gone), retries after the capped backoff, re-measures and advances;
a genuinely breaching rollout under the same churn still halts and restores
the exact pre-rollout configuration through the ConfigStore.
"""

import dataclasses

import pytest

from repro.config.schema import (
    ConfigPushFaultSpec,
    ControllerCrashSpec,
    FaultPlanSpec,
    MachineFaultSpec,
    PerfIsoSpec,
)
from repro.config.validation import validate_fleet
from repro.errors import ConfigError
from repro.experiments.reporting import rows_to_json
from repro.fleet.scenarios import fleet_chaos_rollout
from repro.fleet.simulate import FleetSimulation
from repro.runtime import ExperimentRunner, ResultCache

from fleet_testing import make_tiny_fleet_spec

#: The scenario's fault plan, reused by the variants below.
CHAOS_FAULTS = FaultPlanSpec(
    machines=MachineFaultSpec(crash_rate_per_hour=40.0, mean_downtime=60.0),
    controller_crash=ControllerCrashSpec(at=150.0, recovery_delay=5.0),
    config_push=ConfigPushFaultSpec(failure_rate=0.5, max_failures=2),
)


@pytest.fixture(scope="module")
def chaos_run(fleet_runner):
    spec = fleet_chaos_rollout()
    simulation = FleetSimulation(spec, runner=fleet_runner)
    result = simulation.run()
    return spec, simulation, result


class TestChaosRolloutRecovers:
    def test_rollout_completes_despite_the_faults(self, chaos_run):
        _, _, result = chaos_run
        assert result.status == "completed"
        assert result.stages_completed == result.stages_total == 3
        # The target configuration survived: every file on version 2.
        assert all(v == 2 for v in result.active_config_versions.values())

    def test_crashed_stage_fails_safe_then_retries(self, chaos_run):
        _, simulation, result = chaos_run
        history = [(d.stage, d.action, d.attempt) for d in simulation.rollout.history]
        assert history == [
            ("stage-1", "retry", 1),
            ("stage-1", "advance", 2),
            ("stage-2", "advance", 1),
            ("stage-3", "advance", 1),
        ]
        retry_row = result.stages[1]
        assert retry_row.decision == "retry"
        # The lost digest renders as NaN internally and null in JSON.
        assert retry_row.p99_ratio != retry_row.p99_ratio
        assert retry_row.row()["p99_ratio"] is None

    def test_controller_restarted_through_autopilot(self, chaos_run):
        _, simulation, _ = chaos_run
        assert simulation.rollout_service.restarts == 1
        assert simulation.rollout_service.running

    def test_transient_push_failures_absorbed(self, chaos_run):
        _, simulation, _ = chaos_run
        assert simulation.rollout.push_failures == 2

    def test_machine_churn_reached_the_measurements(self, chaos_run):
        _, simulation, _ = chaos_run
        assert simulation.fault_timeline is not None


class TestChaosDeterminism:
    def test_byte_identical_at_any_worker_count(self):
        spec = fleet_chaos_rollout()
        serial = FleetSimulation(
            spec, runner=ExperimentRunner(max_workers=1, cache=ResultCache())
        ).run()
        parallel = FleetSimulation(
            spec, runner=ExperimentRunner(max_workers=4, cache=ResultCache())
        ).run()
        assert rows_to_json(serial.rows()) == rows_to_json(parallel.rows())

    def test_fault_seed_changes_the_outcome_numbers(self, fleet_runner):
        base = FleetSimulation(fleet_chaos_rollout(), runner=fleet_runner).run()
        other = FleetSimulation(fleet_chaos_rollout(seed=99), runner=fleet_runner).run()
        assert rows_to_json(base.rows()) != rows_to_json(other.rows())


class TestBreachUnderChurn:
    def test_breaching_rollout_still_halts_and_rolls_back(self, fleet_runner):
        """Churn must never mask a genuine regression: an unprotected
        (cpu_policy='none') rollout under the same fault plan halts at the
        canary and restores the exact pre-rollout versions."""
        spec = make_tiny_fleet_spec(
            machines=48, stages=3, target_policy="none", faults=CHAOS_FAULTS
        )
        bullies = tuple(
            dataclasses.replace(group, secondary="cpu_bully", secondary_threads=48)
            for group in spec.groups
        )
        spec = spec.replace(groups=bullies)
        simulation = FleetSimulation(spec, runner=fleet_runner)
        result = simulation.run()
        assert result.status == "halted"
        assert result.stages_completed == 0
        store = simulation.autopilot.config
        for name in result.active_config_versions:
            assert result.active_config_versions[name] == 1
            # The restored spec is the exact baseline object, not a re-push.
            assert store.fetch_perfiso(name) == PerfIsoSpec(enabled=False)


class TestChaosValidation:
    def test_scenario_spec_validates(self):
        validate_fleet(fleet_chaos_rollout())

    def test_crash_past_the_horizon_rejected(self):
        faults = FaultPlanSpec(controller_crash=ControllerCrashSpec(at=1e9))
        spec = make_tiny_fleet_spec(faults=faults)
        with pytest.raises(ConfigError, match="never fire"):
            validate_fleet(spec)
