"""End-to-end fleet simulation tests: determinism, accounting, guardrails."""

import pytest

from repro.config.schema import PlacementSpec
from repro.experiments import matrix
from repro.experiments.reporting import rows_to_json
from repro.fleet.model import FleetModel
from repro.fleet.simulate import FleetSimulation, build_demands
from repro.runtime import ExperimentRunner, ResultCache

from fleet_testing import make_tiny_fleet_spec


@pytest.fixture(scope="module")
def healthy_result(fleet_runner):
    spec = make_tiny_fleet_spec()
    result = FleetSimulation(spec, runner=fleet_runner).run()
    return spec, result


class TestHealthyRollout:
    def test_rollout_completes_and_reclaims_capacity(self, healthy_result):
        spec, result = healthy_result
        assert result.status == "completed"
        assert result.stages_completed == result.stages_total == 2
        assert result.machines == spec.total_machines
        assert result.reclaimed_core_hours > 0
        assert result.batch_machine_hours > 0
        assert [stage.decision for stage in result.stages] == [
            "reference",
            "advance",
            "advance",
        ]

    def test_target_config_stays_active(self, healthy_result):
        _, result = healthy_result
        assert all(version == 2 for version in result.active_config_versions.values())

    def test_digest_counts_cover_every_machine_bucket_sample(self, healthy_result):
        spec, result = healthy_result
        total_samples = result.machine_buckets * spec.samples_per_machine_bucket
        # Colocated machines are oversampled (canary fairness), never under.
        assert result.baseline_digest.count + result.colocated_digest.count >= total_samples
        assert result.baseline_digest.count > 0
        assert result.colocated_digest.count > 0

    def test_final_stage_enables_the_whole_fleet(self, healthy_result):
        spec, result = healthy_result
        assert result.stages[-1].machines_enabled == spec.total_machines
        assert result.stages[-1].colocated_machines > 0

    def test_rows_round_to_stable_payload(self, healthy_result):
        _, result = healthy_result
        rows = result.rows()
        assert [row["stage"] for row in rows] == ["bake", "stage-1", "stage-2"]
        summary = result.summary()
        assert summary["status"] == "completed"
        assert summary["machines"] == result.machines


class TestDeterminism:
    def test_serial_parallel_and_cached_runs_are_byte_identical(self):
        spec = make_tiny_fleet_spec()
        serial = FleetSimulation(
            spec, runner=ExperimentRunner(max_workers=1, cache=ResultCache())
        ).run()
        cache = ResultCache()
        shared = ExperimentRunner(max_workers=4, cache=cache)
        parallel = FleetSimulation(spec, runner=shared).run()
        hits_before = cache.hits
        repeat = FleetSimulation(spec, runner=shared).run()
        assert (
            rows_to_json(serial.rows())
            == rows_to_json(parallel.rows())
            == rows_to_json(repeat.rows())
        )
        assert cache.hits > hits_before  # the repeat was served from the cache

    def test_seed_changes_the_measurement(self, fleet_runner):
        base = FleetSimulation(make_tiny_fleet_spec(), runner=fleet_runner).run()
        other = FleetSimulation(
            make_tiny_fleet_spec(seed=99), runner=fleet_runner
        ).run()
        assert rows_to_json(base.rows()) != rows_to_json(other.rows())


class TestGuardrailBreach:
    def test_unprotected_rollout_halts_and_restores_prior_config(self, fleet_runner):
        result = matrix.run_scenario("fleet-guardrail-breach", runner=fleet_runner)
        fleet_result = result.results[0]
        assert fleet_result.status == "halted"
        assert fleet_result.stages_completed == 0
        assert fleet_result.stages[-1].decision == "halt"
        assert fleet_result.stages[-1].p99_ratio > 1.5
        assert fleet_result.slo_violation_minutes > 0
        # Every group's configuration is back at the pre-rollout version.
        assert all(v == 1 for v in fleet_result.active_config_versions.values())

    def test_matrix_row_reports_the_halt_and_rollback(self, fleet_runner):
        result = matrix.run_scenario("fleet-guardrail-breach", runner=fleet_runner)
        (row,) = result.rows()
        assert row["status"] == "halted"
        assert row["policy"] == "none"
        # The rollback observable: every config file back at version 1.
        assert row["config_versions"] == "1/1/1"


class TestPlacementIntegration:
    def test_build_demands_targets_reclaimable_fraction(self, fleet_runner):
        spec = make_tiny_fleet_spec()
        calibrations = FleetModel(spec).calibrate(fleet_runner)
        demands = build_demands(spec, calibrations)
        total = sum(demand.cores for demand in demands)
        reclaimable = sum(
            group.machines * calibrations[group.name].reclaimable_cores(group.buffer_cores)
            for group in spec.groups
        )
        assert 0 < total <= reclaimable * spec.placement.demand_fraction + spec.placement.job_cores_each

    def test_explicit_job_cores_override_auto_demand(self, fleet_runner):
        spec = make_tiny_fleet_spec().replace(
            placement=PlacementSpec(strategy="worst_fit", job_cores=(4, 4, 2))
        )
        calibrations = FleetModel(spec).calibrate(fleet_runner)
        demands = build_demands(spec, calibrations)
        assert [demand.cores for demand in demands] == [4, 4, 2]

    def test_strategies_produce_identical_totals_when_capacity_abounds(self, fleet_runner):
        base = make_tiny_fleet_spec()
        totals = {}
        for strategy in ("first_fit", "best_fit", "worst_fit"):
            spec = base.replace(placement=PlacementSpec(strategy=strategy))
            result = FleetSimulation(spec, runner=fleet_runner).run()
            totals[strategy] = result.summary()["reclaimed_core_hours"]
        assert len(totals) == 3
        assert all(value > 0 for value in totals.values())
