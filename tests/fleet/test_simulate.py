"""End-to-end fleet simulation tests: determinism, accounting, guardrails."""

import numpy as np
import pytest

from repro.config.schema import (
    FleetSpec,
    MachineGroupSpec,
    PlacementSpec,
    RolloutSpec,
)
from repro.experiments import matrix
from repro.experiments.reporting import rows_to_json
from repro.fleet.model import (
    ModeCalibration,
    interpolate_mode,
    quantile_grid,
)
from repro.fleet.simulate import (
    FleetShardTask,
    FleetSimulation,
    _simulate_shard,
    build_demands,
    sampled_positions,
)
from repro.fleet.model import FleetModel
from repro.metrics.latency import LatencyDigest
from repro.runtime import ExperimentRunner, ResultCache

from fleet_testing import make_tiny_fleet_spec


@pytest.fixture(scope="module")
def healthy_result(fleet_runner):
    spec = make_tiny_fleet_spec()
    result = FleetSimulation(spec, runner=fleet_runner).run()
    return spec, result


class TestHealthyRollout:
    def test_rollout_completes_and_reclaims_capacity(self, healthy_result):
        spec, result = healthy_result
        assert result.status == "completed"
        assert result.stages_completed == result.stages_total == 2
        assert result.machines == spec.total_machines
        assert result.reclaimed_core_hours > 0
        assert result.batch_machine_hours > 0
        assert [stage.decision for stage in result.stages] == [
            "reference",
            "advance",
            "advance",
        ]

    def test_target_config_stays_active(self, healthy_result):
        _, result = healthy_result
        assert all(version == 2 for version in result.active_config_versions.values())

    def test_digest_counts_cover_every_machine_bucket_sample(self, healthy_result):
        spec, result = healthy_result
        total_samples = result.machine_buckets * spec.samples_per_machine_bucket
        # Colocated machines are oversampled (canary fairness), never under.
        assert result.baseline_digest.count + result.colocated_digest.count >= total_samples
        assert result.baseline_digest.count > 0
        assert result.colocated_digest.count > 0

    def test_final_stage_enables_the_whole_fleet(self, healthy_result):
        spec, result = healthy_result
        assert result.stages[-1].machines_enabled == spec.total_machines
        assert result.stages[-1].colocated_machines > 0

    def test_rows_round_to_stable_payload(self, healthy_result):
        _, result = healthy_result
        rows = result.rows()
        assert [row["stage"] for row in rows] == ["bake", "stage-1", "stage-2"]
        summary = result.summary()
        assert summary["status"] == "completed"
        assert summary["machines"] == result.machines


class TestDeterminism:
    def test_serial_parallel_and_cached_runs_are_byte_identical(self):
        spec = make_tiny_fleet_spec()
        serial = FleetSimulation(
            spec, runner=ExperimentRunner(max_workers=1, cache=ResultCache())
        ).run()
        cache = ResultCache()
        shared = ExperimentRunner(max_workers=4, cache=cache)
        parallel = FleetSimulation(spec, runner=shared).run()
        hits_before = cache.hits
        repeat = FleetSimulation(spec, runner=shared).run()
        assert (
            rows_to_json(serial.rows())
            == rows_to_json(parallel.rows())
            == rows_to_json(repeat.rows())
        )
        assert cache.hits > hits_before  # the repeat was served from the cache

    def test_seed_changes_the_measurement(self, fleet_runner):
        base = FleetSimulation(make_tiny_fleet_spec(), runner=fleet_runner).run()
        other = FleetSimulation(
            make_tiny_fleet_spec(seed=99), runner=fleet_runner
        ).run()
        assert rows_to_json(base.rows()) != rows_to_json(other.rows())


class TestGuardrailBreach:
    def test_unprotected_rollout_halts_and_restores_prior_config(self, fleet_runner):
        result = matrix.run_scenario("fleet-guardrail-breach", runner=fleet_runner)
        fleet_result = result.results[0]
        assert fleet_result.status == "halted"
        assert fleet_result.stages_completed == 0
        assert fleet_result.stages[-1].decision == "halt"
        assert fleet_result.stages[-1].p99_ratio > 1.5
        assert fleet_result.slo_violation_minutes > 0
        # Every group's configuration is back at the pre-rollout version.
        assert all(v == 1 for v in fleet_result.active_config_versions.values())

    def test_matrix_row_reports_the_halt_and_rollback(self, fleet_runner):
        result = matrix.run_scenario("fleet-guardrail-breach", runner=fleet_runner)
        (row,) = result.rows()
        assert row["status"] == "halted"
        assert row["policy"] == "none"
        # The rollback observable: every config file back at version 1.
        assert row["config_versions"] == "1/1/1"


def synthetic_mode(scale: float) -> ModeCalibration:
    """A hand-built calibration: shard tests need no simulator runs."""
    grid = quantile_grid()
    base = 0.002 + 0.018 * grid**2
    return ModeCalibration(
        qps=(300.0, 900.0),
        quantiles=(
            tuple(float(v) for v in scale * base),
            tuple(float(v) for v in scale * 1.6 * base),
        ),
        busy_cpu=(0.4, 0.7),
        secondary_cpu=(0.1, 0.2),
        progress_per_s=(5.0, 9.0),
    )


def make_shard_task(**overrides) -> FleetShardTask:
    params = dict(
        stage="stage-1",
        group="row-test",
        shard_index=0,
        seed=11,
        logical_cores=48,
        samples_per_machine=7,
        colocated_samples_per_machine=13,
        bucket_seconds=60.0,
        # Below, between and beyond the calibrated load points: every
        # branch of the load-point bracketing runs.
        loads=(250.0, 500.0, 1100.0),
        placed_cores=(0, 4, 0, 6, 0, 0, 2, 0),
        baseline=synthetic_mode(1.0),
        colocated=synthetic_mode(1.35),
    )
    params.update(overrides)
    return FleetShardTask(**params)


def historical_shard(task: FleetShardTask):
    """The pre-vectorisation per-bucket sampling loop, verbatim.

    The reference the vectorised ``_simulate_shard`` must stay byte-identical
    to in exact mode: same RNG stream order (per bucket: baseline draws, then
    colocated draws), same interpolation and skew arithmetic.
    """
    from repro.fleet.model import stable_seed
    from repro.fleet.simulate import MACHINE_SKEW_SIGMA

    machines = len(task.placed_cores)
    rng = np.random.default_rng(
        stable_seed("fleet-shard", task.seed, task.group, task.stage, task.shard_index)
    )
    skew = rng.lognormal(mean=0.0, sigma=MACHINE_SKEW_SIGMA, size=machines)
    placed = np.asarray(task.placed_cores, dtype=np.float64)
    colocated_index = np.flatnonzero(placed > 0)
    baseline_index = np.flatnonzero(placed == 0)
    grid = quantile_grid()

    baseline_digests, colocated_digests = [], []
    reclaimed = 0.0
    progress = 0.0
    for qps in task.loads:
        bucket_baseline = LatencyDigest()
        bucket_colocated = LatencyDigest()
        for calibration, index, digest, per_machine in (
            (task.baseline, baseline_index, bucket_baseline, task.samples_per_machine),
            (task.colocated, colocated_index, bucket_colocated,
             task.colocated_samples_per_machine),
        ):
            if index.size == 0:
                continue
            curve, _, _, _ = interpolate_mode(calibration, qps)
            uniforms = rng.random((index.size, per_machine))
            samples = np.interp(uniforms, grid, curve) * skew[index][:, None]
            digest.add(samples.ravel())
        if colocated_index.size:
            _, _, secondary_cpu, _ = interpolate_mode(task.colocated, qps)
            granted = secondary_cpu * task.logical_cores
            effective = np.minimum(placed[colocated_index], granted)
            reclaimed += float(effective.sum()) * task.bucket_seconds / 3600.0
            if granted > 0.0:
                progress += float((effective / granted).sum()) * task.bucket_seconds / 3600.0
        baseline_digests.append(bucket_baseline)
        colocated_digests.append(bucket_colocated)
    return baseline_digests, colocated_digests, reclaimed, progress


def assert_digests_identical(actual, expected):
    assert len(actual) == len(expected)
    for got, want in zip(actual, expected):
        assert np.array_equal(got._counts, want._counts)
        assert got._sum == want._sum
        assert got._max == want._max


class TestVectorisedShard:
    def test_exact_mode_is_byte_identical_to_the_historical_loop(self):
        task = make_shard_task()
        result = _simulate_shard(task)
        baseline, colocated, reclaimed, progress = historical_shard(task)
        assert_digests_identical(result.baseline_digests, baseline)
        assert_digests_identical(result.colocated_digests, colocated)
        assert result.reclaimed_core_hours == reclaimed
        assert result.batch_machine_hours == progress

    def test_exact_mode_byte_identity_without_colocation(self):
        task = make_shard_task(placed_cores=(0,) * 6)
        result = _simulate_shard(task)
        baseline, colocated, reclaimed, progress = historical_shard(task)
        assert_digests_identical(result.baseline_digests, baseline)
        assert_digests_identical(result.colocated_digests, colocated)
        assert result.reclaimed_core_hours == reclaimed == 0.0
        assert result.batch_machine_hours == progress == 0.0

    def test_sampled_shard_preserves_the_full_sample_quota(self):
        """Every machine-bucket still contributes exactly its sample count:
        unsampled machines pour in their closed-form expected histogram."""
        task = make_shard_task(sampled=(0, 3, 4))  # 2 baseline + 1 colocated
        result = _simulate_shard(task)
        baseline_machines = sum(1 for c in task.placed_cores if c == 0)
        colocated_machines = len(task.placed_cores) - baseline_machines
        for digest in result.baseline_digests:
            assert digest.count == baseline_machines * task.samples_per_machine
        for digest in result.colocated_digests:
            assert digest.count == colocated_machines * task.colocated_samples_per_machine

    def test_sampled_shard_accounting_matches_exact_mode(self):
        """Reclaimed capacity and batch progress never depend on sampling —
        they are closed-form in the placed cores and calibration scalars."""
        exact = _simulate_shard(make_shard_task())
        sampled = _simulate_shard(make_shard_task(sampled=(1, 2)))
        assert sampled.reclaimed_core_hours == exact.reclaimed_core_hours
        assert sampled.batch_machine_hours == exact.batch_machine_hours

    def test_sampled_shard_p99_tracks_exact_mode(self):
        many = tuple(0 if index % 3 else 4 for index in range(96))
        exact_task = make_shard_task(placed_cores=many)
        sampled_task = make_shard_task(
            placed_cores=many, sampled=tuple(range(0, 96, 2))
        )
        exact = _simulate_shard(exact_task)
        sampled = _simulate_shard(sampled_task)
        for got, want in zip(sampled.baseline_digests, exact.baseline_digests):
            assert got.percentile(99.0) == pytest.approx(want.percentile(99.0), rel=0.1)
        for got, want in zip(sampled.colocated_digests, exact.colocated_digests):
            assert got.percentile(99.0) == pytest.approx(want.percentile(99.0), rel=0.1)


class TestSampledPositions:
    def test_exact_mode_returns_none(self):
        spec = make_tiny_fleet_spec()
        group = spec.groups[0]
        names = [f"m-{i}" for i in range(group.machines)]
        assert sampled_positions(spec, group, names, {}) is None

    def test_small_classes_are_fully_drawn(self):
        """The per-class floor keeps canary-sized classes exact no matter
        how aggressive the sampling fraction is."""
        spec = make_tiny_fleet_spec(
            machines=600, sample_fraction=0.01, min_sampled_machines=128
        )
        group = spec.groups[0]
        names = [f"m-{i}" for i in range(40)]
        placed = {name: 4 for name in names[:5]}  # 5 colocated, 35 baseline
        chosen = sampled_positions(spec, group, names, placed)
        assert set(range(40)) <= chosen

    def test_large_classes_are_strided_deterministically(self):
        spec = make_tiny_fleet_spec(
            machines=600, sample_fraction=0.1, min_sampled_machines=128
        )
        group = spec.groups[0]
        names = [f"m-{i}" for i in range(400)]
        first = sampled_positions(spec, group, names, {})
        second = sampled_positions(spec, group, names, {})
        assert first == second
        assert len(first) == 128  # the floor dominates 0.1 * 400
        positions = sorted(first)
        assert positions[0] == 0 and positions[-1] == 399  # evenly strided


class TestPlacementIntegration:
    def test_build_demands_targets_reclaimable_fraction(self, fleet_runner):
        spec = make_tiny_fleet_spec()
        calibrations = FleetModel(spec).calibrate(fleet_runner)
        demands = build_demands(spec, calibrations)
        total = sum(demand.cores for demand in demands)
        reclaimable = sum(
            group.machines * calibrations[group.name].reclaimable_cores(group.buffer_cores)
            for group in spec.groups
        )
        assert 0 < total <= reclaimable * spec.placement.demand_fraction + spec.placement.job_cores_each

    def test_explicit_job_cores_override_auto_demand(self, fleet_runner):
        spec = make_tiny_fleet_spec().replace(
            placement=PlacementSpec(strategy="worst_fit", job_cores=(4, 4, 2))
        )
        calibrations = FleetModel(spec).calibrate(fleet_runner)
        demands = build_demands(spec, calibrations)
        assert [demand.cores for demand in demands] == [4, 4, 2]

    def test_strategies_produce_identical_totals_when_capacity_abounds(self, fleet_runner):
        base = make_tiny_fleet_spec()
        totals = {}
        for strategy in ("first_fit", "best_fit", "worst_fit"):
            spec = base.replace(placement=PlacementSpec(strategy=strategy))
            result = FleetSimulation(spec, runner=fleet_runner).run()
            totals[strategy] = result.summary()["reclaimed_core_hours"]
        assert len(totals) == 3
        assert all(value > 0 for value in totals.values())

    def test_empty_job_cores_means_a_deliberately_empty_queue(self, fleet_runner):
        """Regression: ``job_cores=()`` used to be indistinguishable from the
        unset default and silently fell back to the derived demand list."""
        spec = make_tiny_fleet_spec().replace(placement=PlacementSpec(job_cores=()))
        calibrations = FleetModel(spec).calibrate(fleet_runner)
        assert build_demands(spec, calibrations) == []

    def test_baseline_only_fleet_runs_with_no_batch_demand(self, fleet_runner):
        spec = make_tiny_fleet_spec().replace(placement=PlacementSpec(job_cores=()))
        result = FleetSimulation(spec, runner=fleet_runner).run()
        assert result.status == "completed"
        assert result.reclaimed_core_hours == 0.0
        assert result.colocated_digest.count == 0


class TestSampledHyperscaleMode:
    """Sampled (hyperscale) mode cross-validated against exact mode."""

    @pytest.fixture(scope="class")
    def mode_pair(self, fleet_runner):
        exact = make_tiny_fleet_spec(machines=600)
        sampled = exact.replace(sample_fraction=0.25, min_sampled_machines=128)
        return (
            FleetSimulation(exact, runner=fleet_runner).run(),
            FleetSimulation(sampled, runner=fleet_runner).run(),
        )

    def test_sampled_rollout_reaches_the_same_decisions(self, mode_pair):
        exact, sampled = mode_pair
        assert sampled.status == exact.status == "completed"
        assert [s.decision for s in sampled.stages] == [s.decision for s in exact.stages]

    def test_sampled_p99s_track_exact_mode(self, mode_pair):
        exact, sampled = mode_pair
        for got, want in zip(sampled.stages, exact.stages):
            if want.colocated_p99_ms:
                assert got.colocated_p99_ms == pytest.approx(
                    want.colocated_p99_ms, rel=0.1
                )
            assert got.baseline_p99_ms == pytest.approx(want.baseline_p99_ms, rel=0.1)

    def test_sampled_accounting_is_exact(self, mode_pair):
        """Capacity accounting covers every machine even in sampled mode."""
        exact, sampled = mode_pair
        assert sampled.reclaimed_core_hours == exact.reclaimed_core_hours
        assert sampled.batch_machine_hours == exact.batch_machine_hours
        assert sampled.machine_buckets == exact.machine_buckets

    def test_sampled_digests_cover_every_machine_bucket_sample(self, mode_pair):
        exact, sampled = mode_pair
        assert (
            sampled.baseline_digest.count + sampled.colocated_digest.count
            >= exact.baseline_digest.count + exact.colocated_digest.count
        )

    def test_sampled_mode_is_worker_count_invariant(self):
        spec = make_tiny_fleet_spec(
            machines=600, sample_fraction=0.25, min_sampled_machines=128
        )
        serial = FleetSimulation(
            spec, runner=ExperimentRunner(max_workers=1, cache=ResultCache())
        ).run()
        parallel = FleetSimulation(
            spec, runner=ExperimentRunner(max_workers=4, cache=ResultCache())
        ).run()
        assert rows_to_json(serial.rows()) == rows_to_json(parallel.rows())


class TestGuardrailPhaseAlignment:
    """Regression: the guardrail must compare a stage's colocated P99 with
    the *concurrent* baseline, not the bake-time snapshot."""

    @pytest.fixture(scope="class")
    def peak_stage_result(self):
        # One row with a 6x day/night swing, phased so the bake bucket sits
        # exactly on the trough and the single stage bucket on the peak.
        # Calibration is synthetic (monkeypatched) so the latency/load
        # relationship is controlled: the tail triples between the load
        # points while isolation only costs 15 % — a healthy rollout that
        # the historical trough-time reference nevertheless condemns.
        from repro.fleet.model import GroupCalibration

        group = MachineGroupSpec(
            name="row-swing",
            machines=16,
            buffer_cores=8,
            secondary="ml_training",
            peak_qps=3000.0,
            trough_qps=500.0,
            phase_offset=0.5,
        )
        spec = FleetSpec(
            groups=(group,),
            rollout=RolloutSpec(
                stage_fractions=(1.0,),
                target_policy="blind",
                guardrail_p99_multiplier=1.5,
                bake_buckets=1,
                stage_buckets=1,
            ),
            bucket_seconds=1800.0,
            diurnal_period=3600.0,
            samples_per_machine_bucket=8,
            calibration_qps=(500.0, 3000.0),
            calibration_duration=0.4,
            calibration_warmup=0.1,
            seed=7,
        )

        grid = quantile_grid()
        base = 0.002 + 0.018 * grid**2

        def synthetic_calibration(scale_low, scale_high):
            return ModeCalibration(
                qps=(500.0, 3000.0),
                quantiles=(
                    tuple(float(v) for v in scale_low * base),
                    tuple(float(v) for v in scale_high * base),
                ),
                busy_cpu=(0.3, 0.5),
                secondary_cpu=(0.15, 0.15),
                progress_per_s=(5.0, 5.0),
            )

        def fake_calibrate(model_self, runner):
            return {
                g.name: GroupCalibration(
                    group=g.name,
                    logical_cores=g.machine.logical_cores,
                    baseline=synthetic_calibration(1.0, 3.0),
                    colocated=synthetic_calibration(1.15, 3.45),
                )
                for g in model_self.spec.groups
            }

        patcher = pytest.MonkeyPatch()
        patcher.setattr(FleetModel, "calibrate", fake_calibrate)
        try:
            runner = ExperimentRunner(max_workers=1, cache=ResultCache())
            result = FleetSimulation(spec, runner=runner).run()
        finally:
            patcher.undo()
        return result

    def test_peak_stage_is_judged_against_the_concurrent_baseline(
        self, peak_stage_result
    ):
        result = peak_stage_result
        assert result.status == "completed"
        assert result.stages[-1].decision == "advance"
        assert result.stages[-1].p99_ratio < 1.5

    def test_the_bake_snapshot_reference_would_have_halted(self, peak_stage_result):
        """The discriminating half of the regression: under the historical
        bake-time reference this exact fleet breaches (the peak-load tail is
        far more than 1.5x the trough-load tail), so the pre-fix code halts
        where the fixed code correctly advances."""
        result = peak_stage_result
        bake_p99 = result.stages[0].baseline_p99_ms
        stage = result.stages[-1]
        assert stage.colocated_p99_ms > 1.5 * bake_p99
