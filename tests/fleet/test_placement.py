"""Unit tests for the secondary placement scheduler."""

import pytest

from repro.errors import ConfigError
from repro.fleet.placement import (
    MachineCapacity,
    PlacementDemand,
    plan_placement,
)


def machines(*cores):
    return [MachineCapacity(f"m{i:03d}", c) for i, c in enumerate(cores)]

def demands(*cores):
    return [PlacementDemand(f"j{i:03d}", c) for i, c in enumerate(cores)]


class TestFirstFit:
    def test_packs_in_machine_order(self):
        plan = plan_placement(machines(8, 8), demands(4, 4, 4))
        by_machine = plan.placed_cores_by_machine()
        assert by_machine == {"m000": 8, "m001": 4}
        assert not plan.unplaced

    def test_larger_jobs_place_first(self):
        # The 6-core job would be blocked if the 2-core jobs went first.
        plan = plan_placement(machines(8), demands(2, 2, 6))
        assert plan.total_placed_cores == 8
        assert [a.job for a in plan.assignments] == ["j002", "j000"]
        assert [d.name for d in plan.unplaced] == ["j001"]

    def test_overflow_goes_unplaced_not_overcommitted(self):
        plan = plan_placement(machines(4, 4), demands(3, 3, 3))
        assert plan.total_placed_cores == 6
        assert len(plan.unplaced) == 1
        for machine, cores in plan.placed_cores_by_machine().items():
            assert cores <= 4

    def test_zero_capacity_machines_host_nothing(self):
        plan = plan_placement(machines(0, 5), demands(5))
        assert plan.placed_cores_by_machine() == {"m001": 5}


class TestStrategies:
    def test_best_fit_prefers_tightest_machine(self):
        plan = plan_placement(machines(10, 4), demands(3), strategy="best_fit")
        assert plan.placed_cores_by_machine() == {"m001": 3}

    def test_worst_fit_prefers_emptiest_machine(self):
        plan = plan_placement(machines(10, 4), demands(3), strategy="worst_fit")
        assert plan.placed_cores_by_machine() == {"m000": 3}

    def test_ties_break_on_canonical_machine_order(self):
        for strategy in ("first_fit", "best_fit", "worst_fit"):
            plan = plan_placement(machines(6, 6), demands(2), strategy=strategy)
            assert plan.placed_cores_by_machine() == {"m000": 2}, strategy

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigError, match="strategy"):
            plan_placement(machines(4), demands(2), strategy="magic")


class TestDeterminism:
    def test_permutation_of_inputs_yields_identical_plan(self):
        ms = machines(5, 9, 2, 7)
        js = demands(4, 1, 6, 3, 2)
        baseline = plan_placement(ms, js)
        shuffled = plan_placement(list(reversed(ms)), list(reversed(js)))
        assert shuffled == baseline

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigError, match="unique"):
            plan_placement([MachineCapacity("m", 4), MachineCapacity("m", 4)], demands(1))
        with pytest.raises(ConfigError, match="unique"):
            plan_placement(machines(4), [PlacementDemand("j", 1), PlacementDemand("j", 2)])

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigError):
            MachineCapacity("m0", -1)
        with pytest.raises(ConfigError):
            PlacementDemand("j0", 0)
        with pytest.raises(ConfigError):
            MachineCapacity("", 1)
        with pytest.raises(ConfigError):
            PlacementDemand("", 1)
