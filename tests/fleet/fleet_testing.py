"""Helpers shared by the fleet tests (kept out of conftest so test modules
can import them by a collision-free module name)."""

from __future__ import annotations

from repro.fleet.scenarios import default_fleet_spec

#: Calibration small enough for the fast tier (~seconds, cached afterwards).
TINY_FLEET = dict(
    calibration_qps=(300.0, 900.0),
    calibration_duration=0.4,
    calibration_warmup=0.1,
    bake_buckets=2,
    stage_buckets=2,
    samples_per_machine_bucket=8,
)


def make_tiny_fleet_spec(machines: int = 24, stages: int = 2, **overrides):
    params = dict(TINY_FLEET)
    params.update(overrides)
    return default_fleet_spec(machines=machines, stages=stages, **params)
