"""Unit tests for the staged rollout engine (no simulation involved)."""

import pytest

from repro.cluster.autopilot import Autopilot
from repro.config.schema import PerfIsoSpec, RolloutSpec
from repro.errors import ClusterError
from repro.fleet.rollout import GuardrailMonitor, StagedRollout

BASELINE = PerfIsoSpec(enabled=False)
TARGET = PerfIsoSpec(cpu_policy="blind")


def make_rollout(store=None, **rollout_kwargs):
    store = store if store is not None else Autopilot().config
    rollout = RolloutSpec(**rollout_kwargs)
    return StagedRollout(
        store,
        rollout,
        {"perfiso-a.json": (BASELINE, TARGET), "perfiso-b.json": (BASELINE, TARGET)},
    )


class TestGuardrailMonitor:
    def test_ratio_and_breach(self):
        monitor = GuardrailMonitor(1.5)
        assert monitor.ratio(3.0, 2.0) == pytest.approx(1.5)
        assert not monitor.breached(3.0, 2.0)
        assert monitor.breached(3.1, 2.0)

    def test_zero_reference_is_only_breached_by_nonzero_measurement(self):
        monitor = GuardrailMonitor(1.5)
        assert monitor.ratio(0.0, 0.0) == 0.0
        assert monitor.breached(1.0, 0.0)

    def test_multiplier_below_one_rejected(self):
        with pytest.raises(ClusterError):
            GuardrailMonitor(0.9)

    def test_zero_reference_ratio_is_infinite_and_breaches(self):
        monitor = GuardrailMonitor(1.5)
        assert monitor.ratio(1.0, 0.0) == float("inf")
        assert monitor.breached_ratio(float("inf"))

    def test_nan_ratio_fails_safe(self):
        """A guardrail that cannot read its own telemetry must halt —
        a bare ``ratio > multiplier`` comparison waves ``nan`` through."""
        monitor = GuardrailMonitor(1.5)
        assert monitor.breached_ratio(float("nan"))


class TestStagedRollout:
    def test_begin_publishes_baseline_then_target(self):
        engine = make_rollout()
        engine.begin()
        assert engine.status == "in_progress"
        for name in ("perfiso-a.json", "perfiso-b.json"):
            assert engine.baseline_version(name) == 1
            assert engine.target_version(name) == 2
            assert engine.store.fetch_perfiso(name) == TARGET

    def test_begin_twice_rejected(self):
        engine = make_rollout()
        engine.begin()
        with pytest.raises(ClusterError, match="already"):
            engine.begin()

    def test_clean_rollout_completes_with_target_active(self):
        engine = make_rollout()
        engine.begin()
        for index, fraction in enumerate(engine.stage_fractions):
            decision = engine.record_stage(f"stage-{index}", fraction, p99_ratio=1.1)
            assert decision.action == "advance"
        engine.finish()
        assert engine.status == "completed"
        assert engine.active_specs(PerfIsoSpec) == {
            "perfiso-a.json": TARGET,
            "perfiso-b.json": TARGET,
        }

    def test_breach_halts_and_restores_exact_baseline_version(self):
        store = Autopilot().config
        # Unrelated history before the rollout: the baseline version the
        # rollout must restore is NOT simply "the previous version".
        store.publish("perfiso-a.json", PerfIsoSpec(cpu_policy="cpu_cycles"))
        engine = make_rollout(store=store)
        engine.begin()
        # More noise after begin(): a hotfix push to one file.
        store.publish("perfiso-a.json", PerfIsoSpec(cpu_policy="static_cores"))
        decision = engine.record_stage("stage-1", 0.02, p99_ratio=9.0)
        assert decision.breached and decision.action == "halt"
        assert engine.status == "halted"
        # Both files are back at the exact version begin() captured.
        assert store.fetch_perfiso("perfiso-a.json") == BASELINE
        assert store.fetch_perfiso("perfiso-b.json") == BASELINE
        assert store.active_version("perfiso-a.json") == engine.baseline_version("perfiso-a.json")

    def test_no_stage_recording_after_halt(self):
        engine = make_rollout()
        engine.begin()
        engine.record_stage("stage-1", 0.02, p99_ratio=9.0)
        with pytest.raises(ClusterError, match="halted"):
            engine.record_stage("stage-2", 0.25, p99_ratio=1.0)

    def test_finish_does_not_resurrect_a_halted_rollout(self):
        engine = make_rollout()
        engine.begin()
        engine.record_stage("stage-1", 0.02, p99_ratio=9.0)
        engine.finish()
        assert engine.status == "halted"

    def test_empty_entries_rejected(self):
        with pytest.raises(ClusterError, match="at least one"):
            StagedRollout(Autopilot().config, RolloutSpec(), {})

    def test_nan_ratio_halts_the_rollout(self):
        """Regression: ``record_stage`` re-implemented the guardrail as a
        bare ``>`` comparison, so a NaN ratio silently advanced the stage
        instead of routing through the monitor's fail-safe verdict.  With
        retries disabled (``stage_attempts=1``) a NaN must halt outright."""
        engine = make_rollout(stage_attempts=1)
        engine.begin()
        decision = engine.record_stage("stage-1", 0.02, p99_ratio=float("nan"))
        assert decision.breached and decision.action == "halt"
        assert engine.status == "halted"

    def test_history_records_decisions(self):
        engine = make_rollout()
        engine.begin()
        engine.record_stage("stage-1", 0.02, p99_ratio=1.2)
        engine.record_stage("stage-2", 1.0, p99_ratio=1.4)
        assert [d.stage for d in engine.history] == ["stage-1", "stage-2"]
        assert all(not d.breached for d in engine.history)


class TestChurnAwareRollout:
    """Stage retries, push retries and rollback survival under churn."""

    def test_nan_ratio_retries_while_attempts_remain(self):
        """Failing-before regression: a transient digest loss (controller
        crash mid-stage) used to halt and roll back the whole rollout; it
        must now retry the stage and only halt once attempts are spent."""
        engine = make_rollout(stage_attempts=3)
        engine.begin()
        first = engine.record_stage("stage-1", 0.02, p99_ratio=float("nan"))
        assert first.action == "retry" and not first.breached and first.attempt == 1
        assert engine.status == "in_progress"
        second = engine.record_stage("stage-1", 0.02, p99_ratio=float("nan"))
        assert second.action == "retry" and second.attempt == 2
        third = engine.record_stage("stage-1", 0.02, p99_ratio=float("nan"))
        assert third.action == "halt" and third.breached and third.attempt == 3
        assert engine.status == "halted"

    def test_retry_then_success_advances(self):
        engine = make_rollout(stage_attempts=3)
        engine.begin()
        assert engine.record_stage("s", 0.02, p99_ratio=float("nan")).action == "retry"
        decision = engine.record_stage("s", 0.02, p99_ratio=1.1)
        assert decision.action == "advance" and decision.attempt == 2

    def test_genuine_breach_never_retries(self):
        engine = make_rollout(stage_attempts=3)
        engine.begin()
        decision = engine.record_stage("s", 0.02, p99_ratio=9.0)
        assert decision.action == "halt" and decision.attempt == 1
        assert engine.status == "halted"

    def test_backoff_doubles_and_caps(self):
        engine = make_rollout(
            stage_attempts=6, retry_backoff_buckets=1, retry_backoff_cap_buckets=4
        )
        engine.begin()
        observed = []
        for _ in range(4):
            engine.record_stage("s", 0.02, p99_ratio=float("nan"))
            observed.append(engine.backoff_buckets("s"))
        assert observed == [1, 2, 4, 4]

    def test_zero_base_backoff_retries_immediately(self):
        engine = make_rollout(retry_backoff_buckets=0)
        engine.begin()
        engine.record_stage("s", 0.02, p99_ratio=float("nan"))
        assert engine.backoff_buckets("s") == 0

    def test_transient_push_failures_are_retried(self):
        """Failing-before regression: a single flaky publish used to
        propagate out of ``begin()``; it is now absorbed and counted."""
        from repro.config.schema import ConfigPushFaultSpec
        from repro.faults import FaultyConfigStore

        store = FaultyConfigStore(
            Autopilot().config,
            ConfigPushFaultSpec(failure_rate=1.0, max_failures=2),
            seed=3,
        )
        engine = make_rollout(store=store, push_attempts=3)
        engine.begin()
        assert engine.status == "in_progress"
        assert engine.push_failures == store.injected_failures == 2

    def test_push_failures_beyond_attempts_reraise(self):
        from repro.config.schema import ConfigPushFaultSpec
        from repro.errors import ConfigPushError
        from repro.faults import FaultyConfigStore

        store = FaultyConfigStore(
            Autopilot().config,
            ConfigPushFaultSpec(failure_rate=1.0, max_failures=100),
            seed=3,
        )
        engine = make_rollout(store=store, push_attempts=2)
        with pytest.raises(ConfigPushError):
            engine.begin()
        assert engine.push_failures == 2

    def test_rollback_survives_a_vanished_baseline_version(self, monkeypatch):
        """Failing-before regression: one missing rollback target used to
        abort mid-recovery, leaving the other files on the breached target
        config; now the error is recorded and the rest still roll back."""
        from repro.errors import UnknownVersionError

        store = Autopilot().config
        engine = make_rollout(store=store)
        engine.begin()
        original = store.rollback

        def flaky_rollback(name, version=None):
            if name == "perfiso-a.json":
                raise UnknownVersionError(name, version, range(1, 3))
            return original(name, version)

        monkeypatch.setattr(store, "rollback", flaky_rollback)
        decision = engine.record_stage("stage-1", 0.02, p99_ratio=9.0)
        assert decision.action == "halt"
        assert engine.status == "halted"
        assert [e.name for e in engine.rollback_errors] == ["perfiso-a.json"]
        # The survivor still rolled back to its exact baseline version.
        assert store.active_version("perfiso-b.json") == engine.baseline_version(
            "perfiso-b.json"
        )
