"""Tests for the fleet model: specs, load curves, sharding and calibration."""

import numpy as np
import pytest

from repro.config.schema import FleetSpec, MachineGroupSpec, PlacementSpec, RolloutSpec
from repro.config.validation import validate_fleet
from repro.errors import ConfigError
from repro.fleet.model import (
    QUANTILE_POINTS,
    FleetModel,
    interpolate_mode,
    stable_seed,
)
from repro.fleet.scenarios import default_groups, stage_fractions

from fleet_testing import make_tiny_fleet_spec


class TestSpecs:
    def test_default_groups_sum_to_requested_machines(self):
        for machines in (3, 24, 650, 2000):
            groups = default_groups(machines)
            assert sum(group.machines for group in groups) == machines
            assert len({group.name for group in groups}) == 3

    def test_stage_fractions_shapes(self):
        assert stage_fractions(1) == (1.0,)
        three = stage_fractions(3)
        assert three[0] == pytest.approx(0.02)
        assert three[-1] == 1.0
        assert list(three) == sorted(three)

    def test_group_validation(self):
        with pytest.raises(ConfigError):
            MachineGroupSpec(name="", machines=5)
        with pytest.raises(ConfigError):
            MachineGroupSpec(name="g", machines=0)
        with pytest.raises(ConfigError):
            MachineGroupSpec(name="g", secondary="quake-server")
        with pytest.raises(ConfigError):
            MachineGroupSpec(name="g", peak_qps=100.0, trough_qps=200.0)
        with pytest.raises(ConfigError):
            MachineGroupSpec(name="g", phase_offset=1.5)

    def test_rollout_validation(self):
        with pytest.raises(ConfigError):
            RolloutSpec(stage_fractions=())
        with pytest.raises(ConfigError):
            RolloutSpec(stage_fractions=(0.5, 0.2, 1.0))
        with pytest.raises(ConfigError):
            RolloutSpec(stage_fractions=(0.02, 0.5))
        with pytest.raises(ConfigError):
            RolloutSpec(guardrail_p99_multiplier=0.9)
        with pytest.raises(ConfigError):
            RolloutSpec(target_policy="yolo")

    def test_placement_validation(self):
        with pytest.raises(ConfigError):
            PlacementSpec(strategy="magic")
        with pytest.raises(ConfigError):
            PlacementSpec(job_cores=(4, 0))
        with pytest.raises(ConfigError):
            PlacementSpec(demand_fraction=0.0)

    def test_fleet_validation(self):
        group = MachineGroupSpec(name="g", machines=4)
        with pytest.raises(ConfigError):
            FleetSpec(groups=())
        with pytest.raises(ConfigError):
            FleetSpec(groups=(group,), calibration_qps=(500.0,))
        with pytest.raises(ConfigError):
            FleetSpec(groups=(group,), calibration_qps=(900.0, 300.0))
        with pytest.raises(ConfigError):
            validate_fleet(FleetSpec(groups=(group, group)))
        with pytest.raises(ConfigError):
            validate_fleet(FleetSpec(groups=(MachineGroupSpec(name="g", buffer_cores=48),)))
        validate_fleet(make_tiny_fleet_spec())


class TestModel:
    def test_machine_names_unique_and_grouped(self):
        model = FleetModel(make_tiny_fleet_spec(machines=30))
        names = [
            name
            for group in model.spec.groups
            for name in model.machine_names(group)
        ]
        assert len(names) == len(set(names)) == 30

    def test_enabled_count_rounds_up_but_caps(self):
        model = FleetModel(make_tiny_fleet_spec())
        group = model.spec.groups[0]
        assert model.enabled_count(group, 0.0001) == 1
        assert model.enabled_count(group, 1.0) == group.machines

    def test_load_at_respects_phase_offset(self):
        spec = make_tiny_fleet_spec()
        model = FleetModel(spec)
        aligned = model.spec.groups[0]      # phase 0: peak at t=0
        shifted = model.spec.groups[2]      # phase-offset row
        assert model.load_at(aligned, 0.0) == pytest.approx(aligned.peak_qps)
        assert model.load_at(shifted, 0.0) < shifted.peak_qps
        # One full period later the load repeats.
        assert model.load_at(shifted, spec.diurnal_period) == pytest.approx(
            model.load_at(shifted, 0.0)
        )

    def test_load_at_delegates_to_the_shared_arrival_model(self):
        """The fleet's diurnal curve *is* the workload-layer DiurnalArrival.

        Pinned bit-for-bit so the fleet and single-machine implementations
        cannot drift apart again (the historical private copy is gone).
        """
        from repro.workloads.arrival_models import DiurnalArrival

        spec = make_tiny_fleet_spec()
        model = FleetModel(spec)
        for group in spec.groups:
            shared = model.arrival_model(group)
            assert isinstance(shared, DiurnalArrival)
            assert shared.spec.peak_qps == group.peak_qps
            assert shared.spec.trough_qps == group.trough_qps
            assert shared.spec.period == spec.diurnal_period
            assert shared.spec.phase_offset == group.phase_offset
            for t in (0.0, 13.7, 900.0, 1800.5, spec.diurnal_period * 2.25):
                assert model.load_at(group, t) == shared.rate_at(t)

    def test_shards_partition_every_machine_exactly_once(self):
        spec = make_tiny_fleet_spec(machines=30).replace(shard_machines=4)
        model = FleetModel(spec)
        for group in spec.groups:
            covered = []
            for _, start, stop in model.shards(group):
                covered.extend(range(start, stop))
            assert covered == list(range(group.machines))

    def test_stable_seed_is_process_independent_and_sensitive(self):
        assert stable_seed("a", 1) == stable_seed("a", 1)
        assert stable_seed("a", 1) != stable_seed("a", 2)
        assert stable_seed("a", 1) != stable_seed("b", 1)


class TestCalibrationSpecs:
    def _group(self, **overrides):
        params = dict(name="g", machines=4)
        params.update(overrides)
        return MachineGroupSpec(**params)

    def _spec_for(self, group, policy="blind"):
        fleet = FleetSpec(groups=(group,)).replace(
            rollout=RolloutSpec(target_policy=policy)
        )
        return FleetModel(fleet).calibration_spec(group, "colocated", 0)

    def test_every_secondary_kind_maps_to_its_tenant(self):
        assert self._spec_for(self._group(secondary="ml_training")).ml_training is not None
        assert self._spec_for(self._group(secondary="hdfs")).hdfs is not None
        assert self._spec_for(self._group(secondary="disk_bully")).disk_bully is not None
        bully = self._spec_for(self._group(secondary="cpu_bully", secondary_threads=12))
        assert bully.cpu_bully.threads == 12
        default_bully = self._spec_for(self._group(secondary="cpu_bully"))
        assert default_bully.cpu_bully.threads > 0

    def test_secondary_threads_override(self):
        spec = self._spec_for(self._group(secondary="ml_training", secondary_threads=6))
        assert spec.ml_training.threads == 6
        disk = self._spec_for(self._group(secondary="disk_bully", secondary_threads=2))
        assert disk.disk_bully.threads == 2

    def test_target_policy_shapes_the_colocated_perfiso(self):
        blind = self._spec_for(self._group(buffer_cores=6), policy="blind")
        assert blind.perfiso.cpu_policy == "blind"
        assert blind.perfiso.blind.buffer_cores == 6
        static = self._spec_for(self._group(), policy="static_cores")
        assert static.perfiso.cpu_policy == "static_cores"
        none = self._spec_for(self._group(), policy="none")
        assert none.perfiso is None

    def test_baseline_mode_has_no_secondary_or_perfiso(self):
        group = self._group(secondary="cpu_bully")
        fleet = FleetSpec(groups=(group,))
        spec = FleetModel(fleet).calibration_spec(group, "baseline", 1)
        assert spec.perfiso is None
        assert not spec.secondary_jobs()
        assert spec.workload.qps == fleet.calibration_qps[1]


class TestCalibration:
    def test_calibrate_produces_monotone_quantiles(self, fleet_runner, tiny_fleet_spec):
        model = FleetModel(tiny_fleet_spec)
        calibrations = model.calibrate(fleet_runner)
        assert set(calibrations) == {g.name for g in tiny_fleet_spec.groups}
        for calibration in calibrations.values():
            for mode in (calibration.baseline, calibration.colocated):
                assert mode.qps == tiny_fleet_spec.calibration_qps
                for curve in mode.quantiles:
                    values = np.asarray(curve)
                    assert values.size == QUANTILE_POINTS
                    assert np.all(np.diff(values) >= 0)
                    assert np.all(values >= 0)

    def test_reclaimable_cores_positive_and_below_machine(self, fleet_runner, tiny_fleet_spec):
        model = FleetModel(tiny_fleet_spec)
        calibrations = model.calibrate(fleet_runner)
        for group in tiny_fleet_spec.groups:
            reclaimable = calibrations[group.name].reclaimable_cores(group.buffer_cores)
            assert 0 <= reclaimable <= group.machine.logical_cores - group.buffer_cores

    def test_interpolate_mode_blends_and_clamps(self, fleet_runner, tiny_fleet_spec):
        model = FleetModel(tiny_fleet_spec)
        mode = model.calibrate(fleet_runner)[tiny_fleet_spec.groups[0].name].colocated
        low, *_ = interpolate_mode(mode, 1.0)
        assert np.array_equal(low, np.asarray(mode.quantiles[0]))
        high, *_ = interpolate_mode(mode, 1e9)
        assert np.array_equal(high, np.asarray(mode.quantiles[-1]))
        mid_qps = (mode.qps[0] + mode.qps[1]) / 2.0
        mid, busy, _, _ = interpolate_mode(mode, mid_qps)
        expected = (np.asarray(mode.quantiles[0]) + np.asarray(mode.quantiles[1])) / 2.0
        assert np.allclose(mid, expected)
        assert min(mode.busy_cpu) <= busy <= max(mode.busy_cpu)

    def test_second_calibration_is_fully_cached(self, fleet_runner, tiny_fleet_spec):
        model = FleetModel(tiny_fleet_spec)
        model.calibrate(fleet_runner)
        stores_before = fleet_runner.cache.stores
        model.calibrate(fleet_runner)
        assert fleet_runner.cache.stores == stores_before


class TestDerivedGroupLoadCurves:
    def test_load_at_honours_a_derived_group_not_in_the_spec(self):
        """load_at is a function of the *passed* group's fields, not its name."""
        import dataclasses

        spec = make_tiny_fleet_spec()
        model = FleetModel(spec)
        group = spec.groups[0]
        shifted = dataclasses.replace(group, phase_offset=0.5)
        # Same name, different phase: the curves must differ at t=0.
        assert model.load_at(shifted, 0.0) != model.load_at(group, 0.0)
        assert model.load_at(shifted, 0.0) == pytest.approx(group.trough_qps)
        renamed = dataclasses.replace(group, name="not-in-the-fleet")
        assert model.load_at(renamed, 0.0) == model.load_at(group, 0.0)
