"""Tests for the ``python -m repro.fleet`` command line."""

import json

import pytest

from repro.fleet import cli

TINY_ARGS = [
    "--machines", "24", "--stages", "2", "--buckets", "2", "--samples", "8",
    "--calibration-qps", "300,900", "--calibration-duration", "0.4",
    "--calibration-warmup", "0.1",
]


class TestCli:
    def test_list_prints_fleet_catalog(self, capsys):
        assert cli.main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fleet-staged-rollout" in out
        assert "fleet-guardrail-breach" in out

    def test_default_fleet_json_output(self, capsys):
        assert cli.main(TINY_ARGS + ["--out", "json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        stages = [row["stage"] for row in rows]
        assert stages == ["bake", "stage-1", "stage-2", "total"]
        assert rows[-1]["machines"] == 24
        assert rows[-1]["status"] == "completed"

    def test_serial_and_parallel_output_is_byte_identical(self, capsys):
        assert cli.main(TINY_ARGS + ["--out", "json", "--workers", "1"]) == 0
        serial = capsys.readouterr().out
        assert cli.main(TINY_ARGS + ["--out", "json", "--workers", "4"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel

    def test_csv_output_has_header(self, capsys):
        assert cli.main(TINY_ARGS + ["--out", "csv"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("stage,fraction,buckets")
        assert len(lines) == 5  # header + bake + 2 stages + total

    def test_table_output_mentions_stages(self, capsys):
        assert cli.main(TINY_ARGS) == 0
        out = capsys.readouterr().out
        assert "stage-1" in out and "reclaimed_core_hours" in out

    def test_scenario_flag_runs_catalog_entry(self, capsys):
        assert cli.main(["--scenario", "fleet-guardrail-breach", "--out", "json"]) == 0
        (row,) = json.loads(capsys.readouterr().out)
        assert row["status"] == "halted"

    def test_unknown_scenario_exits_nonzero_with_suggestion(self, capsys):
        assert cli.main(["--scenario", "fleet-guardrail-breech"]) == 2
        err = capsys.readouterr().err
        assert "did you mean" in err and "fleet-guardrail-breach" in err

    def test_experiment_scenario_rejected(self, capsys):
        assert cli.main(["--scenario", "standalone"]) == 2
        assert "not a fleet scenario" in capsys.readouterr().err

    def test_scenario_with_fleet_shaping_flags_rejected(self, capsys):
        code = cli.main(
            ["--scenario", "fleet-guardrail-breach", "--machines", "48"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "--machines" in err and "ignored" in err

    def test_too_few_machines_exits_cleanly(self, capsys):
        assert cli.main(["--machines", "2"]) == 2
        assert "at least three machines" in capsys.readouterr().err

    def test_zero_stages_exits_cleanly(self, capsys):
        assert cli.main(TINY_ARGS + ["--stages", "0"]) == 2
        assert "at least one stage" in capsys.readouterr().err

    def test_bad_calibration_qps_exits_nonzero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["--calibration-qps", "300,oops"])
        assert excinfo.value.code == 2
        assert "--calibration-qps" in capsys.readouterr().err


class TestFailureIsolation:
    """A scenario raising mid-batch yields exit 1, an error table, and the
    completed scenarios' rows — never a bare traceback."""

    @pytest.fixture()
    def boom_scenario(self):
        from repro.experiments import matrix

        def boom_fleet(seed=7):
            raise RuntimeError("injected fleet failure")

        matrix.register(
            matrix.Scenario(
                name="boom-fleet",
                description="always raises, for failure-isolation tests",
                builder=boom_fleet,
                kind="fleet",
            )
        )
        yield "boom-fleet"
        matrix._REGISTRY.pop("boom-fleet", None)

    def test_partial_results_flushed_with_error_table(self, boom_scenario, capsys):
        code = cli.main(["--scenario", f"{boom_scenario},fleet-guardrail-breach"])
        assert code == 1
        out = capsys.readouterr().out
        assert "halted" in out  # the healthy scenario still ran and printed
        assert "1 scenarios failed" in out
        assert "RuntimeError: injected fleet failure" in out

    def test_unknown_name_still_rejected_before_running(self, boom_scenario, capsys):
        # Caller mistakes keep their pre-run exit-2 contract even in a batch.
        assert cli.main(["--scenario", f"{boom_scenario},no-such-fleet"]) == 2
