"""End-to-end integration tests: the paper's qualitative claims on short runs.

These use reduced load, duration and bully width so the whole suite stays
fast, but each asserts a *relationship* between scenarios rather than an
absolute number — the same relationships the benchmark harness reproduces at
full scale.
"""

import pytest

from repro.experiments import scenarios as sc
from repro.experiments.single_machine import SingleMachineExperiment

QPS = 800.0
DURATION = 1.5
WARMUP = 0.3
SEED = 11


def run(spec, name):
    return SingleMachineExperiment(spec, name).run()


@pytest.fixture(scope="module")
def standalone_result():
    return run(sc.standalone(qps=QPS, duration=DURATION, warmup=WARMUP, seed=SEED), "standalone")


@pytest.fixture(scope="module")
def no_isolation_result():
    return run(sc.no_isolation(48, qps=QPS, duration=DURATION, warmup=WARMUP, seed=SEED),
               "no-isolation")


@pytest.fixture(scope="module")
def blind_result():
    return run(sc.blind_isolation(8, qps=QPS, duration=DURATION, warmup=WARMUP, seed=SEED),
               "blind-8")


class TestColocationInterference:
    def test_unmanaged_colocation_destroys_tail_latency(self, standalone_result, no_isolation_result):
        """Figure 4's qualitative claim: an unrestricted CPU bully inflates P99
        by an order of magnitude."""
        assert no_isolation_result.latency.p99 > 5 * standalone_result.latency.p99

    def test_unmanaged_colocation_leaves_no_idle_cpu(self, no_isolation_result):
        assert no_isolation_result.cpu.idle < 0.05

    def test_standalone_machine_is_mostly_idle(self, standalone_result):
        assert standalone_result.cpu.idle > 0.7
        assert standalone_result.queries_dropped == 0


class TestBlindIsolationProtection:
    def test_tail_latency_protected(self, standalone_result, blind_result):
        """Figure 5's claim: with 8 buffer cores the P99 stays within ~1-2 ms
        of standalone."""
        degradation = blind_result.latency.p99 - standalone_result.latency.p99
        assert degradation < 0.004

    def test_median_latency_protected(self, standalone_result, blind_result):
        assert blind_result.latency.p50 - standalone_result.latency.p50 < 0.002

    def test_no_queries_dropped_under_blind_isolation(self, blind_result):
        assert blind_result.queries_dropped == 0

    def test_utilization_headline(self, standalone_result, blind_result):
        """The abstract's headline: colocation raises machine utilisation a lot."""
        busy_standalone = 1.0 - standalone_result.cpu.idle
        busy_colocated = 1.0 - blind_result.cpu.idle
        assert busy_colocated > busy_standalone + 0.3

    def test_secondary_makes_substantial_progress(self, blind_result, no_isolation_result):
        assert blind_result.secondary_progress > 0.3 * no_isolation_result.secondary_progress

    def test_controller_keeps_roughly_buffer_cores_idle(self, blind_result):
        # 8 buffer cores out of 48 = ~17 % idle; allow generous tolerance.
        assert 0.08 < blind_result.cpu.idle < 0.40


class TestAlternativePolicies:
    @pytest.fixture(scope="class")
    def static_result(self):
        return run(sc.static_cores(8, qps=QPS, duration=DURATION, warmup=WARMUP, seed=SEED),
                   "cores-8")

    @pytest.fixture(scope="class")
    def cycles_result(self):
        return run(sc.cpu_cycles(0.45, qps=QPS, duration=DURATION, warmup=WARMUP, seed=SEED),
                   "cycles-45")

    def test_static_cores_protect_latency(self, standalone_result, static_result):
        assert static_result.latency.p99 - standalone_result.latency.p99 < 0.004

    def test_blind_beats_static_cores_on_secondary_work(self, blind_result, static_result):
        """Figure 8's claim: blind isolation does more batch work than a static
        8-core restriction at off-peak load."""
        assert blind_result.secondary_progress > static_result.secondary_progress
        assert blind_result.cpu.idle < static_result.cpu.idle

    def test_cycle_throttling_fails_to_protect_latency(self, standalone_result, cycles_result):
        """Figure 7's claim: duty-cycle throttling still lets the secondary
        interfere with the primary's tail."""
        assert cycles_result.latency.p99 > standalone_result.latency.p99 + 0.005
