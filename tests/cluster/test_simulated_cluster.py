"""Tests for the event-driven cluster simulation (small configurations)."""


from repro.cluster.simulated import ClusterScenario, SimulatedCluster
from repro.config.schema import ClusterSpec, CpuBullySpec, PerfIsoSpec
from repro.experiments import scenarios as sc


def tiny_scenario(**overrides):
    defaults = dict(
        cluster=ClusterSpec(partitions=2, rows=2, tla_machines=2),
        node=sc.base_spec(qps=400, duration=0.6, warmup=0.2),
        total_qps=800,
        duration=0.6,
        warmup=0.2,
        seed=3,
    )
    defaults.update(overrides)
    return ClusterScenario(**defaults)


class TestSimulatedCluster:
    def test_layout_built_from_spec(self):
        cluster = SimulatedCluster(tiny_scenario())
        assert len(cluster.nodes) == 4
        assert {node.info.row for node in cluster.nodes.values()} == {0, 1}

    def test_requests_flow_through_all_layers(self):
        cluster = SimulatedCluster(tiny_scenario())
        result = cluster.run()
        assert result.requests_completed > 0
        assert result.local_latency.count > 0
        assert result.mla_latency.count > 0
        assert result.tla_latency.count > 0

    def test_layer_latencies_increase(self):
        result = SimulatedCluster(tiny_scenario()).run()
        assert result.mla_latency.mean > 0
        assert result.tla_latency.mean > result.mla_latency.mean

    def test_every_index_machine_serves_its_row_load(self):
        cluster = SimulatedCluster(tiny_scenario())
        cluster.run()
        for node in cluster.nodes.values():
            assert node.primary.completed > 0

    def test_colocated_cluster_with_perfiso_runs(self):
        scenario = tiny_scenario(
            perfiso=PerfIsoSpec(cpu_policy="blind"),
            cpu_bully=CpuBullySpec(threads=48),
        )
        cluster = SimulatedCluster(scenario, name="colocated")
        result = cluster.run()
        assert result.requests_completed > 0
        assert result.cpu.secondary > 0.2
        # Every node's controller kept some cores idle for the primary.
        for node in cluster.nodes.values():
            assert node.controller is not None
            assert node.controller.polls > 0

    def test_summary_contains_all_layers(self):
        result = SimulatedCluster(tiny_scenario()).run()
        summary = result.summary()
        for key in ("local_p99_ms", "mla_p99_ms", "tla_p99_ms", "idle_cpu_pct"):
            assert key in summary
