"""Tests for the Figure 10 production-cluster model."""


import numpy as np
import pytest

from repro.cluster.largescale import (
    CalibrationPoint,
    ProductionClusterSimulation,
    diurnal_load,
)
from repro.config.schema import ClusterSpec
from repro.errors import ExperimentError


class TestDiurnalLoad:
    def test_peak_and_trough(self):
        curve = diurnal_load(peak_qps=4000, trough_qps=1600, period=3600)
        assert curve(0.0) == pytest.approx(4000)
        assert curve(1800.0) == pytest.approx(1600)
        assert curve(3600.0) == pytest.approx(4000)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ExperimentError):
            diurnal_load(peak_qps=1000, trough_qps=2000)


@pytest.mark.slow
class TestProductionClusterSimulation:
    """Runs real calibrations of the detailed simulator — slow tier."""

    @pytest.fixture(scope="class")
    def result(self):
        simulation = ProductionClusterSimulation(
            cluster=ClusterSpec(partitions=6, rows=2, tla_machines=4),
            calibration_qps=(1000.0, 2500.0),
            calibration_duration=0.8,
            calibration_warmup=0.2,
            seed=3,
        )
        return simulation.run(duration=600.0, bucket=120.0,
                              load_curve=diurnal_load(2500.0, 1000.0, 600.0),
                              requests_per_bucket=500)

    def test_produces_full_time_series(self, result):
        assert len(result.times) == 5
        assert len(result.qps) == len(result.tla_p99_ms) == len(result.cpu_utilization_pct) == 5

    def test_load_follows_diurnal_curve(self, result):
        assert max(result.qps) > min(result.qps)

    def test_tail_latency_stays_bounded(self, result):
        """The headline of Figure 10: P99 stays flat (tens of ms) while the
        fleet runs at high utilisation."""
        assert result.max_tla_p99_ms < 80.0

    def test_high_average_utilization(self, result):
        assert result.mean_cpu_utilization_pct > 50.0

    def test_timeseries_export(self, result):
        series = result.as_timeseries()
        assert set(series.names()) == {"qps", "tla_p99_ms", "cpu_pct"}
        table = series.as_table()
        assert len(table) == 5

class TestConstructorValidation:
    """Cheap guards that must stay in the fast tier (no calibration runs)."""

    def test_requires_two_calibration_points(self):
        with pytest.raises(ExperimentError):
            ProductionClusterSimulation(calibration_qps=(2000.0,))


class TestInterpolateSeeding:
    """The mixed-sample draw must vary per bucket, not per load level."""

    @staticmethod
    def _simulation_with_fake_points(seed: int) -> ProductionClusterSimulation:
        simulation = ProductionClusterSimulation(
            calibration_qps=(1000.0, 2000.0), seed=seed
        )
        rng = np.random.default_rng(0)
        simulation._points = [
            CalibrationPoint(
                qps=1000.0,
                latency_samples=rng.lognormal(np.log(0.004), 0.4, size=2000),
                primary_cpu=0.2, secondary_cpu=0.3, os_cpu=0.05,
            ),
            CalibrationPoint(
                qps=2000.0,
                latency_samples=rng.lognormal(np.log(0.008), 0.4, size=2000),
                primary_cpu=0.4, secondary_cpu=0.2, os_cpu=0.06,
            ),
        ]
        return simulation

    def test_same_load_different_buckets_draw_different_samples(self):
        simulation = self._simulation_with_fake_points(seed=7)
        first, _ = simulation._interpolate(1500.0, bucket_index=0)
        second, _ = simulation._interpolate(1500.0, bucket_index=1)
        assert not np.array_equal(first, second)

    def test_same_bucket_is_reproducible(self):
        a = self._simulation_with_fake_points(seed=7)
        b = self._simulation_with_fake_points(seed=7)
        first, busy_a = a._interpolate(1500.0, bucket_index=3)
        second, busy_b = b._interpolate(1500.0, bucket_index=3)
        assert np.array_equal(first, second)
        assert busy_a == busy_b

    def test_draws_depend_on_experiment_seed(self):
        a = self._simulation_with_fake_points(seed=7)
        b = self._simulation_with_fake_points(seed=8)
        first, _ = a._interpolate(1500.0, bucket_index=0)
        second, _ = b._interpolate(1500.0, bucket_index=0)
        assert not np.array_equal(first, second)
