"""Tests for the sampled-aggregation cluster model."""

import numpy as np
import pytest

from repro.cluster.sampled import SampledClusterModel
from repro.config.schema import ClusterSpec
from repro.errors import ClusterError


@pytest.fixture
def samples():
    return np.random.default_rng(0).lognormal(mean=np.log(0.004), sigma=0.5, size=5000)


class TestSampledClusterModel:
    def test_layer_latency_ordering(self, samples):
        model = SampledClusterModel(ClusterSpec(), samples, seed=1)
        result = model.simulate(5000)
        # Aggregation can only add latency: local <= MLA <= TLA at every level.
        assert result.mla.p99 > result.local.p99
        assert result.tla.p99 > result.mla.p99
        assert result.tla.mean > result.local.mean

    def test_tail_at_scale_amplification(self, samples):
        """The MLA P99 with a 22-way fan-out far exceeds the local P99 —
        the max-over-servers effect that motivates per-machine isolation."""
        model = SampledClusterModel(ClusterSpec(), samples, seed=1)
        result = model.simulate(5000)
        assert result.mla.p50 > np.percentile(samples, 90)

    def test_wider_fanout_increases_tail(self, samples):
        model = SampledClusterModel(ClusterSpec(), samples, seed=1)
        curve = model.tail_at_scale_curve([1, 4, 22], num_requests=4000)
        assert curve[1] < curve[4] < curve[22]

    def test_deterministic_given_seed(self, samples):
        a = SampledClusterModel(ClusterSpec(), samples, seed=5).simulate(1000)
        b = SampledClusterModel(ClusterSpec(), samples, seed=5).simulate(1000)
        assert a.tla.p99 == pytest.approx(b.tla.p99)

    def test_summary_keys(self, samples):
        result = SampledClusterModel(ClusterSpec(), samples, seed=1).simulate(500)
        summary = result.summary()
        assert set(summary) >= {"local_p99_ms", "mla_p99_ms", "tla_p99_ms"}

    def test_too_few_samples_rejected(self):
        with pytest.raises(ClusterError):
            SampledClusterModel(ClusterSpec(), [0.001] * 5)

    def test_negative_samples_rejected(self):
        with pytest.raises(ClusterError):
            SampledClusterModel(ClusterSpec(), [-0.001] * 100)

    def test_invalid_request_count_rejected(self, samples):
        model = SampledClusterModel(ClusterSpec(), samples)
        with pytest.raises(ClusterError):
            model.simulate(0)
        with pytest.raises(ClusterError):
            model.tail_at_scale_curve([0])

    def test_curve_applies_machine_skew(self, samples):
        """Regression: ``tail_at_scale_curve`` ignored the per-machine skew
        that ``simulate`` applies, so it ablated an idealised homogeneous
        fleet.  With the fix, widening the skew moves the curve; before it,
        both models drew the same RNG stream and the curves were identical."""
        flat = SampledClusterModel(
            ClusterSpec(), samples, seed=3, machine_skew_sigma=0.0
        ).tail_at_scale_curve([4, 22], num_requests=4000)
        skewed = SampledClusterModel(
            ClusterSpec(), samples, seed=3, machine_skew_sigma=0.5
        ).tail_at_scale_curve([4, 22], num_requests=4000)
        assert flat != skewed
        # Heterogeneity can only fatten the max-over-servers tail.
        assert skewed[22] > flat[22]

    def test_curve_rejects_fanout_beyond_real_partitions(self, samples):
        model = SampledClusterModel(ClusterSpec(), samples, seed=1)
        with pytest.raises(ClusterError, match="partitions"):
            model.tail_at_scale_curve([model.cluster.partitions + 1])
