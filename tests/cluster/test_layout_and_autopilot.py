"""Tests for cluster layout and the Autopilot service manager."""

import pytest

from repro.cluster.autopilot import Autopilot, ManagedService
from repro.cluster.layout import ClusterLayout
from repro.config.schema import ClusterSpec, PerfIsoSpec
from repro.errors import ClusterError, UnknownVersionError


class TestClusterLayout:
    def test_paper_cluster_dimensions(self):
        layout = ClusterLayout(ClusterSpec())
        assert len(layout.index_machines) == 44
        assert len(layout.tla_machines) == 31
        assert layout.total_machines == 75

    def test_machines_in_row(self):
        layout = ClusterLayout(ClusterSpec(partitions=4, rows=2, tla_machines=2))
        row0 = layout.machines_in_row(0)
        assert len(row0) == 4
        assert all(m.row == 0 for m in row0)
        assert sorted(m.partition for m in row0) == [0, 1, 2, 3]

    def test_machine_for_lookup(self):
        layout = ClusterLayout(ClusterSpec(partitions=4, rows=2, tla_machines=2))
        machine = layout.machine_for(partition=2, row=1)
        assert machine.partition == 2 and machine.row == 1

    def test_unknown_machine_rejected(self):
        layout = ClusterLayout(ClusterSpec(partitions=2, rows=1, tla_machines=1))
        with pytest.raises(ClusterError):
            layout.machine_for(partition=5, row=0)
        with pytest.raises(ClusterError):
            layout.machines_in_row(3)

    def test_machine_names_unique(self):
        layout = ClusterLayout(ClusterSpec(partitions=6, rows=3, tla_machines=2))
        names = [m.name for m in layout.index_machines]
        assert len(names) == len(set(names))


class TestConfigStore:
    def test_publish_and_fetch(self):
        autopilot = Autopilot()
        autopilot.config.publish("perfiso.json", PerfIsoSpec(cpu_policy="static_cores"))
        fetched = autopilot.config.fetch_perfiso()
        assert fetched.cpu_policy == "static_cores"
        assert autopilot.config.files() == ["perfiso.json"]

    def test_missing_file_rejected(self):
        with pytest.raises(ClusterError):
            Autopilot().config.fetch_perfiso()

    def test_republish_overwrites(self):
        autopilot = Autopilot()
        autopilot.config.publish("perfiso.json", PerfIsoSpec(cpu_policy="blind"))
        autopilot.config.publish("perfiso.json", PerfIsoSpec(cpu_policy="none"))
        assert autopilot.config.fetch_perfiso().cpu_policy == "none"
        assert autopilot.config.pushes == 2


class TestConfigStoreVersions:
    def test_publish_returns_increasing_versions(self):
        store = Autopilot().config
        assert store.publish("perfiso.json", PerfIsoSpec(cpu_policy="blind")) == 1
        assert store.publish("perfiso.json", PerfIsoSpec(cpu_policy="none")) == 2
        assert store.version_count("perfiso.json") == 2
        assert store.active_version("perfiso.json") == 2

    def test_fetch_version_returns_exact_historical_spec(self):
        store = Autopilot().config
        original = PerfIsoSpec(cpu_policy="static_cores")
        store.publish("perfiso.json", original)
        store.publish("perfiso.json", PerfIsoSpec(cpu_policy="blind"))
        assert store.fetch_version("perfiso.json", 1, PerfIsoSpec) == original

    def test_rollback_restores_prior_version(self):
        store = Autopilot().config
        original = PerfIsoSpec(cpu_policy="blind", enabled=False)
        store.publish("perfiso.json", original)
        store.publish("perfiso.json", PerfIsoSpec(cpu_policy="blind"))
        assert store.rollback("perfiso.json") == 1
        assert store.fetch_perfiso() == original
        # Rolling back is a push (machines re-fetch the file).
        assert store.pushes == 3

    def test_rollback_to_explicit_version_even_after_more_pushes(self):
        store = Autopilot().config
        original = PerfIsoSpec(enabled=False)
        store.publish("perfiso.json", original)
        store.publish("perfiso.json", PerfIsoSpec(cpu_policy="cpu_cycles"))
        store.publish("perfiso.json", PerfIsoSpec(cpu_policy="none"))
        assert store.rollback("perfiso.json", 1) == 1
        assert store.fetch_perfiso() == original
        # History is never rewritten: the newer versions are still there.
        assert store.version_count("perfiso.json") == 3

    def test_rollback_bounds_checked(self):
        store = Autopilot().config
        store.publish("perfiso.json", PerfIsoSpec())
        with pytest.raises(ClusterError):
            store.rollback("perfiso.json")  # no prior version
        with pytest.raises(ClusterError):
            store.rollback("perfiso.json", 7)
        with pytest.raises(ClusterError):
            store.rollback("missing.json")

    def test_fetch_version_bounds_checked(self):
        store = Autopilot().config
        store.publish("perfiso.json", PerfIsoSpec())
        with pytest.raises(ClusterError):
            store.fetch_version("perfiso.json", 0, PerfIsoSpec)
        with pytest.raises(ClusterError):
            store.fetch_version("perfiso.json", 2, PerfIsoSpec)

    def test_unknown_version_error_names_the_available_versions(self):
        """Recovery code (rollouts rolling back through churn) needs to see
        what versions *do* exist, so the dedicated error carries them."""
        store = Autopilot().config
        store.publish("perfiso.json", PerfIsoSpec())
        store.publish("perfiso.json", PerfIsoSpec(cpu_policy="blind"))
        with pytest.raises(UnknownVersionError) as excinfo:
            store.fetch_version("perfiso.json", 9, PerfIsoSpec)
        error = excinfo.value
        assert error.name == "perfiso.json"
        assert error.version == 9
        assert error.available == (1, 2)
        assert "available versions: 1, 2" in str(error)
        # Same contract on the rollback path, and it is a ClusterError
        # subclass so legacy except-clauses keep working.
        assert isinstance(error, ClusterError)
        with pytest.raises(UnknownVersionError, match="no version 7"):
            store.rollback("perfiso.json", 7)

    def test_unknown_file_is_not_a_version_error(self):
        """Asking about a file the store has never seen is a different
        mistake from asking for a missing version of a known file."""
        with pytest.raises(ClusterError, match="no configuration file") as excinfo:
            Autopilot().config.rollback("missing.json")
        assert not isinstance(excinfo.value, UnknownVersionError)


class TestAutopilotServices:
    def _make_service(self, machine="m0", name="perfiso", state=None):
        calls = {"start": 0, "stop": 0}
        service = ManagedService(
            name=name,
            machine=machine,
            start=lambda: calls.__setitem__("start", calls["start"] + 1),
            stop=lambda: calls.__setitem__("stop", calls["stop"] + 1),
            save_state=(lambda: dict(state)) if state is not None else None,
            restore_state=(lambda s: state.update(s)) if state is not None else None,
        )
        return service, calls

    def test_register_start_stop(self):
        autopilot = Autopilot()
        service, calls = self._make_service()
        autopilot.register(service)
        autopilot.start("m0", "perfiso")
        assert calls["start"] == 1 and service.running
        autopilot.stop("m0", "perfiso")
        assert calls["stop"] == 1 and not service.running

    def test_duplicate_registration_rejected(self):
        autopilot = Autopilot()
        service, _ = self._make_service()
        autopilot.register(service)
        with pytest.raises(ClusterError):
            autopilot.register(self._make_service()[0])

    def test_unknown_service_rejected(self):
        with pytest.raises(ClusterError):
            Autopilot().service("m0", "nothing")

    def test_start_all_fleet_wide(self):
        autopilot = Autopilot()
        tracked = []
        for machine in ("m0", "m1", "m2"):
            service, calls = self._make_service(machine=machine)
            autopilot.register(service)
            tracked.append(calls)
        autopilot.start_all("perfiso")
        assert all(c["start"] == 1 for c in tracked)

    def test_crash_recovery_restores_state(self):
        autopilot = Autopilot()
        state = {"current_core_count": 40}
        service, calls = self._make_service(state=state)
        autopilot.register(service)
        autopilot.start("m0", "perfiso")
        autopilot.checkpoint("m0", "perfiso")
        state["current_core_count"] = 0  # state lost in the crash
        autopilot.crash_and_recover("m0", "perfiso")
        assert service.restarts == 1
        assert state["current_core_count"] == 40
        assert calls["start"] == 2

    def test_start_is_idempotent(self):
        autopilot = Autopilot()
        service, calls = self._make_service()
        autopilot.register(service)
        autopilot.start("m0", "perfiso")
        autopilot.start("m0", "perfiso")
        assert calls["start"] == 1
