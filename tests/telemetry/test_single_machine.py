"""End-to-end telemetry on a single-machine experiment.

Two contracts are pinned here: instrumentation changes *nothing* about the
experiment's results (telemetry is strictly observational), and the stream
it produces is schema-valid and carries the per-component metrics the issue
names — occupancy, idle cores, offered/served QPS, controller decisions and
windowed P99 against the SLO.
"""

import pytest

from repro.config.schema import (
    BlindIsolationSpec,
    CpuBullySpec,
    ExperimentSpec,
    PerfIsoSpec,
    WorkloadSpec,
)
from repro.experiments.single_machine import SingleMachineExperiment
from repro.telemetry import TelemetrySession, validate_stream_file
from repro.telemetry.stream import read_records


def _specs():
    workload = WorkloadSpec(qps=350.0, duration=0.8, warmup=0.2, trace_queries=2000)
    plain = ExperimentSpec(workload=workload, seed=11)
    isolated = ExperimentSpec(
        workload=workload,
        seed=11,
        cpu_bully=CpuBullySpec(threads=8),
        perfiso=PerfIsoSpec(cpu_policy="blind", blind=BlindIsolationSpec(buffer_cores=4)),
    )
    return {"plain": plain, "isolated": isolated}


@pytest.mark.parametrize("name", ["plain", "isolated"])
def test_results_identical_with_and_without_telemetry(tmp_path, name):
    spec = _specs()[name]
    baseline = SingleMachineExperiment(spec, scenario=name).run()
    path = tmp_path / "stream.jsonl"
    with TelemetrySession.to_path(str(path), source="test") as session:
        instrumented = SingleMachineExperiment(spec, scenario=name).run(telemetry=session)
    # Dataclass equality covers latency stats, the CPU breakdown and its full
    # timeseries, counts, controller history and the secondary breakdown.
    assert instrumented == baseline
    validate_stream_file(str(path))


def test_stream_carries_component_metrics(tmp_path):
    spec = _specs()["isolated"]
    path = tmp_path / "stream.jsonl"
    with TelemetrySession.to_path(
        str(path), source="test", meta={"scenario": "isolated"}
    ) as session:
        SingleMachineExperiment(spec, scenario="isolated").run(telemetry=session)

    summary = validate_stream_file(str(path))
    assert summary.snapshots >= 10
    for metric in (
        "scheduler.occupancy",
        "scheduler.idle_cores",
        "workload.offered_qps",
        "workload.served_qps",
        "latency.windowed_p99_ms",
        "latency.slo_ms",
        "controller.secondary_cores",
        "controller.polls",
    ):
        assert metric in summary.metric_names
    # Every controller poll inside the run window closed one decide span.
    assert summary.span_names.get("controller.decide", 0) >= 10

    records = read_records(str(path))
    assert records[0]["scenario"] == "isolated"
    snapshots = [r for r in records if r["type"] == "snapshot"]
    assert all(r["label"] == "isolated" for r in snapshots)
    # Occupancy is a fraction; offered qps tracks the constant workload.
    # (The last probe can fire after the client drained, so served_qps is
    # checked as "served at some point" rather than on the final snapshot.)
    last = snapshots[-1]["metrics"]
    assert 0.0 <= last["scheduler.occupancy"] <= 1.0
    assert last["workload.offered_qps"] == spec.workload.qps
    assert max(r["metrics"]["workload.served_qps"] for r in snapshots) > 0.0
    # With PerfIso active the ratio against the SLO is published.
    assert any(
        r["metrics"].get("latency.p99_over_slo") is not None for r in snapshots
    )
    spans = [r for r in records if r["type"] == "span"]
    decide = [s for s in spans if s["name"] == "controller.decide"]
    assert all(s["attributes"].get("decision") for s in decide)
    assert all(s["attributes"]["policy"] == "blind" for s in decide)


def test_probe_count_matches_default_cadence(tmp_path):
    spec = _specs()["plain"]
    path = tmp_path / "stream.jsonl"
    with TelemetrySession.to_path(str(path), source="test") as session:
        SingleMachineExperiment(spec).run(telemetry=session)
    summary = validate_stream_file(str(path))
    # 128 probes per run by default; the final interval can land exactly on
    # the horizon, so allow the one-off tail probe.
    assert 100 <= summary.snapshots <= 130


def test_custom_probe_interval(tmp_path):
    spec = _specs()["plain"]
    path = tmp_path / "stream.jsonl"
    session = TelemetrySession.to_path(str(path), source="test", probe_interval=0.25)
    with session:
        SingleMachineExperiment(spec).run(telemetry=session)
    summary = validate_stream_file(str(path))
    assert summary.snapshots <= 5
