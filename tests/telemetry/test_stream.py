"""Tests for the SnapshotWriter and TelemetrySession plumbing."""

import pytest

from repro.telemetry import SnapshotWriter, TelemetrySession, validate_stream_file
from repro.telemetry.registry import TelemetryError
from repro.telemetry.spans import Span
from repro.telemetry.stream import (
    _SPAN_ENCODE,
    _span_line,
    default_probe_interval,
    read_records,
)


def test_meta_record_written_on_construction(tmp_path):
    path = tmp_path / "stream.jsonl"
    writer = SnapshotWriter(str(path), source="test", meta={"scenario": "s1"})
    writer.close()
    (meta,) = read_records(str(path))
    assert meta["type"] == "meta"
    assert meta["source"] == "test"
    assert meta["scenario"] == "s1"
    assert meta["run_id"] == writer.run_id
    # Even a run that crashed before its first probe left a valid stream.
    validate_stream_file(str(path))


def test_snapshot_seq_autoincrements(tmp_path):
    path = tmp_path / "stream.jsonl"
    with SnapshotWriter(str(path), source="test") as writer:
        assert writer.write_snapshot(0.5, {"a": 1.0}) == 0
        assert writer.write_snapshot(1.0, {"a": 2.0}, label="stage-1") == 1
        assert writer.snapshots_written == 2
    summary = validate_stream_file(str(path))
    assert summary.snapshots == 2
    records = read_records(str(path))
    assert records[2]["label"] == "stage-1"


def test_write_after_close_raises(tmp_path):
    writer = SnapshotWriter(str(tmp_path / "s.jsonl"), source="test")
    writer.close()
    writer.close()  # idempotent
    with pytest.raises(TelemetryError, match="closed"):
        writer.write_snapshot(0.0, {})
    with pytest.raises(TelemetryError, match="closed"):
        writer.write_span(Span(name="controller.decide", time=0.0))


@pytest.mark.parametrize(
    "span",
    [
        Span(
            name="controller.decide",
            time=1.5,
            wall_ms=0.0123,
            attributes={
                "policy": "blind",
                "idle_cores": 3.0,
                "cores_before": 8,
                "decision": "cores=9",
            },
        ),
        Span(name="rollout.stage", time=0.0, attributes={"stage": "5pct", "held": True}),
        Span(name="fleet.shards", time=2.0, status="error", attributes={"x": None}),
        # Not fast-path eligible: escapes, nested values, non-finite floats,
        # non-scalar attribute values — must fall back to the real encoder.
        Span(name='weird "name"\n', time=1.0, attributes={"a": 1}),
        Span(name="s", time=1.0, attributes={"nested": {"k": 1}}),
        Span(name="s", time=float("inf"), attributes={}),
        Span(name="s", time=1.0, attributes={"v": float("nan")}),
        Span(name="s", time=1.0, attributes={"obj": object()}),
    ],
)
def test_span_fast_serialiser_matches_json_encoder(span):
    # The hot-path serialiser must be byte-identical to the compact stdlib
    # encoding for every span it accepts, and fall back for the rest.
    assert _span_line(span) == _SPAN_ENCODE(span.as_record())


def test_write_log_stringifies_fields(tmp_path):
    path = tmp_path / "s.jsonl"
    with SnapshotWriter(str(path), source="test") as writer:
        writer.write_log("warning", "guardrail breach", {"ratio": 1.7})
    records = read_records(str(path))
    assert records[1] == {
        "type": "log",
        "level": "warning",
        "event": "guardrail breach",
        "fields": {"ratio": "1.7"},
    }
    validate_stream_file(str(path))


def test_default_probe_interval():
    assert default_probe_interval(1.28) == pytest.approx(0.01)
    with pytest.raises(TelemetryError):
        default_probe_interval(0.0)


def test_session_to_path_and_tracer(tmp_path):
    path = tmp_path / "s.jsonl"
    with TelemetrySession.to_path(str(path), source="matrix") as session:
        tracer = session.tracer(lambda: 4.0)
        tracer.record("fleet.shards", shards=3)
        session.writer.write_snapshot(4.0, {"x": 1.0})
    summary = validate_stream_file(str(path))
    assert summary.spans == 1
    assert summary.snapshots == 1
    assert summary.span_names == {"fleet.shards": 1}


def test_session_interval_override():
    writer_path = "/dev/null"
    session = TelemetrySession(SnapshotWriter(writer_path, source="t"), probe_interval=0.25)
    assert session.interval_for(10.0) == 0.25
    session.close()
    with pytest.raises(TelemetryError, match="positive"):
        TelemetrySession(SnapshotWriter(writer_path, source="t"), probe_interval=0.0)
