"""Tests for the stream tail and the stdlib HTTP console."""

import json
import urllib.error
import urllib.request

from repro.telemetry import SnapshotWriter
from repro.telemetry.serve import StreamTail, TelemetryServer
from repro.telemetry.spans import Span


def make_stream(path, snapshots=3):
    writer = SnapshotWriter(str(path), source="test", meta={"scenario": "s"})
    for index in range(snapshots):
        writer.write_snapshot(float(index), {"x": float(index)})
    writer.write_span(Span(name="controller.decide", time=1.0, wall_ms=0.1))
    writer.write_log("info", "hello", {})
    return writer


class TestStreamTail:
    def test_ingests_whole_file(self, tmp_path):
        path = tmp_path / "s.jsonl"
        make_stream(path).close()
        tail = StreamTail(str(path))
        tail.refresh()
        assert tail.meta["scenario"] == "s"
        assert len(tail.snapshots) == 3
        assert len(tail.spans) == 1
        assert len(tail.logs) == 1
        assert tail.summary()["records"] == 6

    def test_incremental_refresh_reads_only_new_bytes(self, tmp_path):
        path = tmp_path / "s.jsonl"
        writer = make_stream(path, snapshots=1)
        tail = StreamTail(str(path))
        tail.refresh()
        assert len(tail.snapshots) == 1
        writer.write_snapshot(9.0, {"x": 9.0})
        tail.refresh()
        assert len(tail.snapshots) == 2
        assert tail.snapshots[-1]["time"] == 9.0
        writer.close()

    def test_partial_trailing_line_waits_for_more_bytes(self, tmp_path):
        path = tmp_path / "s.jsonl"
        record = {"type": "snapshot", "seq": 0, "time": 0.0, "metrics": {}}
        line = json.dumps(record)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"type": "meta", "schema": 1, "source": "t", "run_id": "r"}))
            handle.write("\n")
            handle.write(line[:20])  # producer caught mid-write
            handle.flush()
        tail = StreamTail(str(path))
        tail.refresh()
        assert tail.meta is not None
        assert tail.snapshots == []
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(line[20:])
            handle.write("\n")
        tail.refresh()
        assert len(tail.snapshots) == 1


class TestTelemetryServer:
    def get(self, url):
        with urllib.request.urlopen(url, timeout=5) as response:
            return response.status, response.read().decode("utf-8")

    def test_endpoints(self, tmp_path):
        path = tmp_path / "s.jsonl"
        make_stream(path).close()
        with TelemetryServer(str(path), host="127.0.0.1", port=0) as server:
            server.start_background()
            base = server.url.rstrip("/")
            status, html = self.get(server.url)
            assert status == 200
            assert "telemetry console" in html

            status, body = self.get(f"{base}/meta")
            assert json.loads(body)["source"] == "test"

            status, body = self.get(f"{base}/summary")
            summary = json.loads(body)
            assert summary["snapshots"] == 3
            assert summary["spans"] == 1

            status, body = self.get(f"{base}/snapshots?after=-1")
            payload = json.loads(body)
            assert [r["seq"] for r in payload["snapshots"]] == [0, 1, 2]
            assert payload["next"] == 2
            status, body = self.get(f"{base}/snapshots?after={payload['next']}")
            assert json.loads(body)["snapshots"] == []

            status, body = self.get(f"{base}/spans?after=1")
            assert json.loads(body)["spans"] == []
            status, body = self.get(f"{base}/spans?after=-5")
            assert len(json.loads(body)["spans"]) == 1

    def test_unknown_path_is_404(self, tmp_path):
        path = tmp_path / "s.jsonl"
        make_stream(path).close()
        with TelemetryServer(str(path), host="127.0.0.1", port=0) as server:
            server.start_background()
            try:
                urllib.request.urlopen(f"{server.url.rstrip('/')}/nope", timeout=5)
            except urllib.error.HTTPError as error:
                assert error.code == 404
            else:
                raise AssertionError("expected a 404")

    def test_server_tails_live_stream(self, tmp_path):
        path = tmp_path / "s.jsonl"
        writer = make_stream(path, snapshots=1)
        with TelemetryServer(str(path), host="127.0.0.1", port=0) as server:
            server.start_background()
            base = server.url.rstrip("/")
            _status, body = self.get(f"{base}/snapshots?after=-1")
            assert len(json.loads(body)["snapshots"]) == 1
            writer.write_snapshot(5.0, {"x": 5.0})
            _status, body = self.get(f"{base}/snapshots?after=0")
            assert [r["time"] for r in json.loads(body)["snapshots"]] == [5.0]
        writer.close()
