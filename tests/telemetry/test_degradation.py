"""Telemetry must observe the run, never kill it: OSError degradation.

Failing-before regressions: a full disk (or yanked volume) under the
telemetry stream used to propagate ``OSError`` out of ``write_snapshot`` /
``write_span`` and crash the simulation being observed.  The writer now
disables itself with one structured warning and every later write becomes a
silent no-op; the span tracer likewise drops a dead sink and keeps its
bounded tail.  Writing to an explicitly *closed* writer is still a
programming error and still raises.
"""

import pytest

from repro.telemetry import SnapshotWriter
from repro.telemetry.registry import TelemetryError
from repro.telemetry.spans import Span, SpanTracer


class FailingHandle:
    """A file object whose I/O dies after ``healthy_writes`` successes."""

    def __init__(self, healthy_writes=0):
        self.healthy_writes = healthy_writes
        self.writes = 0
        self.closed = False

    def write(self, text):
        self.writes += 1
        if self.writes > self.healthy_writes:
            raise OSError(28, "No space left on device")
        return len(text)

    def flush(self):
        pass

    def close(self):
        self.closed = True


def make_writer(tmp_path, handle):
    writer = SnapshotWriter(str(tmp_path / "stream.jsonl"), source="test")
    writer._handle = handle
    return writer


class TestSnapshotWriterDegradation:
    def test_oserror_disables_instead_of_raising(self, tmp_path):
        writer = make_writer(tmp_path, FailingHandle())
        seq = writer.write_snapshot(0.5, {"a": 1.0})
        assert writer.disabled
        assert seq == 0  # seq continuity preserved even for the failed write
        assert writer.snapshots_written == 0

    def test_disabled_writer_is_a_silent_noop(self, tmp_path, capsys):
        writer = make_writer(tmp_path, FailingHandle())
        writer.write_snapshot(0.5, {"a": 1.0})
        first = capsys.readouterr().err
        assert "telemetry stream disabled" in first
        # The run keeps issuing writes; none raise, none warn again.
        writer.write_snapshot(1.0, {"a": 2.0})
        writer.write_span(Span(name="controller.decide", time=1.0))
        writer.write_log("warning", "event", {"time": 1.0})
        assert capsys.readouterr().err == ""

    def test_seq_keeps_advancing_while_disabled(self, tmp_path):
        writer = make_writer(tmp_path, FailingHandle())
        assert writer.write_snapshot(0.5, {}) == 0
        assert writer.write_snapshot(1.0, {}) == 1

    def test_handle_closed_on_disable(self, tmp_path):
        handle = FailingHandle()
        writer = make_writer(tmp_path, handle)
        writer.write_snapshot(0.5, {})
        assert handle.closed

    def test_close_swallows_oserror(self, tmp_path):
        class FailingClose(FailingHandle):
            def close(self):
                super().close()
                raise OSError(5, "Input/output error")

        writer = make_writer(tmp_path, FailingClose(healthy_writes=100))
        writer.close()  # must not raise
        assert writer.disabled

    def test_explicit_close_still_raises_on_write(self, tmp_path):
        """Degradation is for I/O failures only — using a writer after
        close() remains a programming error."""
        writer = SnapshotWriter(str(tmp_path / "s.jsonl"), source="test")
        writer.close()
        assert not writer.disabled
        with pytest.raises(TelemetryError, match="closed"):
            writer.write_snapshot(0.0, {})

    def test_simulation_survives_midrun_disk_failure(self, tmp_path):
        """The integration shape: the stream dies after the meta record and
        a couple of snapshots; the remaining probes are no-ops and the
        stream's healthy prefix stays parseable."""
        from repro.telemetry import read_records

        path = tmp_path / "stream.jsonl"
        writer = SnapshotWriter(str(path), source="test")
        writer.write_snapshot(0.1, {"x": 1.0})
        writer._handle = FailingHandle()
        for tick in range(5):
            writer.write_snapshot(0.2 + tick, {"x": float(tick)})
        assert writer.disabled
        records = read_records(str(path))
        assert [r["type"] for r in records] == ["meta", "snapshot"]


class TestSpanTracerDegradation:
    def test_dead_sink_dropped_with_one_warning(self, capsys):
        calls = []

        def sink(span):
            calls.append(span)
            raise OSError(32, "Broken pipe")

        tracer = SpanTracer(clock=lambda: 0.0, sink=sink)
        tracer.record("controller.decide")
        assert "span sink disabled" in capsys.readouterr().err
        tracer.record("controller.decide")
        assert calls and len(calls) == 1  # the sink was dropped after one failure
        assert tracer.count == 2  # but spans keep being counted
        assert len(tracer.named("controller.decide")) == 2  # and retained
        assert capsys.readouterr().err == ""  # and no second warning

    def test_span_context_manager_survives_sink_death(self):
        def sink(span):
            raise OSError(28, "No space left on device")

        tracer = SpanTracer(clock=lambda: 0.0, sink=sink)
        with tracer.span("rollout.stage", stage="stage-1"):
            pass  # must not raise
        assert tracer.count == 1
