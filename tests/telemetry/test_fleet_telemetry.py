"""Telemetry on the analytic fleet tier: per-bucket snapshots + stage spans."""

import pytest
from fleet_testing import make_tiny_fleet_spec

from repro.fleet.simulate import FleetSimulation
from repro.telemetry import TelemetrySession, validate_stream_file
from repro.telemetry.stream import read_records


@pytest.fixture(scope="module")
def fleet_runner():
    from repro.runtime import ExperimentRunner, ResultCache

    return ExperimentRunner(max_workers=2, cache=ResultCache())


@pytest.fixture(scope="module")
def fleet_stream(tmp_path_factory, fleet_runner):
    """One instrumented tiny-fleet run shared by this module's tests."""
    spec = make_tiny_fleet_spec()
    baseline = FleetSimulation(spec, runner=fleet_runner).run()
    path = tmp_path_factory.mktemp("fleet-telemetry") / "stream.jsonl"
    with TelemetrySession.to_path(str(path), source="fleet") as session:
        instrumented = FleetSimulation(spec, runner=fleet_runner, telemetry=session).run()
    return spec, baseline, instrumented, str(path)


def test_results_identical_with_and_without_telemetry(fleet_stream):
    _spec, baseline, instrumented, _path = fleet_stream
    assert instrumented.status == baseline.status == "completed"
    assert instrumented.rows() == baseline.rows()
    assert [vars(stage) for stage in instrumented.stages] == [
        vars(stage) for stage in baseline.stages
    ]


def test_stream_is_valid_with_bucket_snapshots(fleet_stream):
    spec, _baseline, _instrumented, path = fleet_stream
    summary = validate_stream_file(path)
    # One snapshot per simulated bucket across bake + every rollout stage.
    total_buckets = spec.rollout.bake_buckets + len(spec.rollout.stage_fractions) * (
        spec.rollout.stage_buckets
    )
    assert summary.snapshots == total_buckets
    for metric in (
        "fleet.offered_qps",
        "fleet.served_qps",
        "fleet.occupancy",
        "fleet.idle_buffer_cores",
        "fleet.machines_colocated",
        "fleet.baseline_p99_ms",
        "fleet.colocated_p99_ms",
        "fleet.p99_ratio",
        "fleet.guardrail_ratio",
    ):
        assert metric in summary.metric_names


def test_stage_and_shard_spans(fleet_stream):
    spec, _baseline, _instrumented, path = fleet_stream
    records = read_records(path)
    spans = [r for r in records if r["type"] == "span"]
    stage_spans = [s for s in spans if s["name"] == "rollout.stage"]
    shard_spans = [s for s in spans if s["name"] == "fleet.shards"]
    # bake + one per rollout stage.
    assert len(stage_spans) == 1 + len(spec.rollout.stage_fractions)
    assert stage_spans[0]["attributes"]["stage"] == "bake"
    for span in stage_spans[1:]:
        assert span["attributes"]["decision"] in ("advance", "halt")
        assert "p99_ratio" in span["attributes"]
    assert len(shard_spans) == 1 + len(spec.rollout.stage_fractions)
    assert all(s["attributes"]["shards"] >= 1 for s in shard_spans)


def test_snapshot_values_are_physical(fleet_stream):
    spec, _baseline, _instrumented, path = fleet_stream
    records = read_records(path)
    snapshots = [r for r in records if r["type"] == "snapshot"]
    machines = spec.total_machines
    for snapshot in snapshots:
        metrics = snapshot["metrics"]
        # The analytic tier has no drop model: served == offered.
        assert metrics["fleet.served_qps"] == metrics["fleet.offered_qps"]
        assert metrics["fleet.offered_qps"] > 0.0
        assert 0 <= metrics["fleet.machines_colocated"] <= machines
        assert metrics["fleet.occupancy"] >= 0.0
        assert metrics["fleet.idle_buffer_cores"] >= 0.0
    labels = [snapshot.get("label") for snapshot in snapshots]
    assert labels[0] == "bake"
    assert len(set(labels)) == 1 + len(spec.rollout.stage_fractions)
    times = [snapshot["time"] for snapshot in snapshots]
    assert times == sorted(times)
