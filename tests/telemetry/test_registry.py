"""Tests for the metrics registry (counters, gauges, histograms, namespaces)."""

import pytest

from repro.telemetry import MetricsRegistry
from repro.telemetry.registry import TelemetryError


class TestCounter:
    def test_counts_up(self):
        registry = MetricsRegistry()
        counter = registry.counter("queries", unit="q")
        counter.inc()
        counter.inc(4.0)
        assert counter.read() == 5.0

    def test_rejects_decrease(self):
        counter = MetricsRegistry().counter("queries")
        with pytest.raises(TelemetryError, match="cannot decrease"):
            counter.inc(-1.0)


class TestGauge:
    def test_set_and_read(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(3.5)
        assert gauge.read() == 3.5

    def test_callback_gauge_reads_lazily(self):
        state = {"value": 1.0}
        gauge = MetricsRegistry().gauge("depth", fn=lambda: state["value"])
        assert gauge.read() == 1.0
        state["value"] = 7.0
        assert gauge.read() == 7.0

    def test_callback_gauge_rejects_set(self):
        gauge = MetricsRegistry().gauge("depth", fn=lambda: 0.0)
        with pytest.raises(TelemetryError, match="callback-driven"):
            gauge.set(1.0)

    def test_tracked_gauge_records_history(self):
        gauge = MetricsRegistry().gauge("depth", track=True)
        gauge.set(1.0, time=0.5)
        gauge.set(2.0, time=1.5)
        assert gauge.series is not None
        assert list(gauge.series.values()) == [1.0, 2.0]


class TestHistogram:
    def test_summary_stats(self):
        histogram = MetricsRegistry().histogram("latency", unit="s")
        histogram.observe_many([0.010, 0.012, 0.100])
        summary = histogram.read()
        assert summary["count"] == 3.0
        assert summary["max"] >= 0.1
        assert 0.0 < summary["p50"] < summary["p99"] <= summary["max"] * 1.05

    def test_backed_by_mergeable_digest(self):
        first = MetricsRegistry().histogram("latency")
        second = MetricsRegistry().histogram("latency")
        first.observe(0.010)
        second.observe(0.020)
        first.digest.merge(second.digest)
        assert first.read()["count"] == 2.0


class TestRegistry:
    def test_same_name_same_type_dedupes(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_same_name_other_type_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TelemetryError, match="already registered"):
            registry.gauge("a")

    def test_collect_reads_sorted(self):
        registry = MetricsRegistry()
        registry.gauge("b").set(2.0)
        registry.counter("a").inc()
        registry.histogram("c").observe(0.01)
        collected = registry.collect()
        assert list(collected) == ["a", "b", "c"]
        assert collected["a"] == 1.0
        assert isinstance(collected["c"], dict)

    def test_contains_and_names(self):
        registry = MetricsRegistry()
        registry.gauge("x.y")
        assert "x.y" in registry and registry.names() == ["x.y"]
        assert len(registry) == 1
        assert registry.get("missing") is None


class TestNamespace:
    def test_prefixes_names(self):
        registry = MetricsRegistry()
        scheduler = registry.namespace("scheduler")
        scheduler.gauge("occupancy").set(0.5)
        assert "scheduler.occupancy" in registry

    def test_nested_namespaces(self):
        registry = MetricsRegistry()
        inner = registry.namespace("fleet").namespace("group-a")
        inner.counter("shards").inc()
        assert "fleet.group-a.shards" in registry

    def test_empty_prefix_rejected(self):
        with pytest.raises(TelemetryError, match="non-empty"):
            MetricsRegistry().namespace("")
