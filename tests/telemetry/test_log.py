"""Tests for the structured logger."""

import logging

from repro.telemetry.log import _HANDLER_FLAG, format_fields, get_logger


class TestFormatFields:
    def test_plain_values_unquoted(self):
        assert format_fields({"level": "info", "count": 3}) == "level=info count=3"

    def test_values_with_spaces_quoted(self):
        assert format_fields({"event": "command failed"}) == 'event="command failed"'

    def test_quotes_and_newlines_escaped(self):
        assert format_fields({"v": 'say "hi"\n'}) == 'v="say \\"hi\\"\\n"'

    def test_empty_value_quoted(self):
        assert format_fields({"v": ""}) == 'v=""'

    def test_equals_sign_quoted(self):
        assert format_fields({"v": "a=b"}) == 'v="a=b"'


class TestGetLogger:
    def test_emits_logfmt_line_to_stderr(self, capsys):
        get_logger("repro.test-emit").error("command failed", error="bad spec")
        err = capsys.readouterr().err
        assert "level=error" in err
        assert "logger=repro.test-emit" in err
        assert 'event="command failed"' in err
        assert 'error="bad spec"' in err

    def test_handler_installed_once(self):
        get_logger("repro.a")
        get_logger("repro.b")
        root = logging.getLogger("repro")
        flagged = [h for h in root.handlers if getattr(h, _HANDLER_FLAG, False)]
        assert len(flagged) == 1

    def test_debug_suppressed_at_default_level(self, capsys):
        logger = get_logger("repro.test-level")
        logger.debug("noisy detail", k=1)
        assert capsys.readouterr().err == ""

    def test_sink_tees_structured_payload(self, capsys):
        received = []
        logger = get_logger("repro.test-sink")
        logger.set_sink(lambda level, event, fields: received.append((level, event, fields)))
        logger.warning("guardrail breach", ratio=1.7)
        assert received == [("warning", "guardrail breach", {"ratio": 1.7})]
        assert "guardrail breach" in capsys.readouterr().err

    def test_sink_receives_suppressed_levels(self, capsys):
        received = []
        logger = get_logger("repro.test-sink2")
        logger.set_sink(lambda level, event, fields: received.append(event))
        logger.debug("below threshold")
        assert received == ["below threshold"]
        assert capsys.readouterr().err == ""
