"""Tests for the versioned record schema and the BENCH_*.json guard."""

import json
import math
import pathlib

import pytest

from repro.telemetry import validate_bench_file
from repro.telemetry.registry import TelemetryError
from repro.telemetry.schema import (
    BENCH_SCHEMAS,
    SCHEMA_VERSION,
    validate_bench_record,
    validate_record,
    validate_stream,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def meta_record(**overrides):
    record = {"type": "meta", "schema": SCHEMA_VERSION, "source": "test", "run_id": "abc123"}
    record.update(overrides)
    return record


def snapshot_record(seq=0, **overrides):
    record = {"type": "snapshot", "seq": seq, "time": 1.0, "metrics": {"a": 1.0}}
    record.update(overrides)
    return record


class TestValidateRecord:
    def test_accepts_all_types(self):
        assert validate_record(meta_record(), first=True) == "meta"
        assert validate_record(snapshot_record()) == "snapshot"
        span = {
            "type": "span",
            "name": "s",
            "time": 0.0,
            "wall_ms": 0.1,
            "status": "ok",
            "attributes": {},
        }
        assert validate_record(span) == "span"
        assert validate_record({"type": "log", "level": "info", "event": "hi"}) == "log"

    def test_rejects_non_object(self):
        with pytest.raises(TelemetryError, match="not an object"):
            validate_record([1, 2])

    def test_rejects_unknown_type(self):
        with pytest.raises(TelemetryError, match="unknown record type"):
            validate_record({"type": "mystery"})

    def test_first_record_must_be_meta(self):
        with pytest.raises(TelemetryError, match="open with a meta"):
            validate_record(snapshot_record(), first=True)

    def test_rejects_wrong_schema_version(self):
        with pytest.raises(TelemetryError, match="unsupported schema version"):
            validate_record(meta_record(schema=SCHEMA_VERSION + 1), first=True)

    def test_rejects_missing_required_field(self):
        record = snapshot_record()
        del record["metrics"]
        with pytest.raises(TelemetryError, match="missing 'metrics'"):
            validate_record(record)

    def test_rejects_non_finite_metric(self):
        with pytest.raises(TelemetryError, match="not numeric"):
            validate_record(snapshot_record(metrics={"bad": math.inf}))
        with pytest.raises(TelemetryError, match="not numeric"):
            validate_record(snapshot_record(metrics={"bad": True}))

    def test_null_metric_means_no_sample_yet(self):
        assert validate_record(snapshot_record(metrics={"p99": None})) == "snapshot"

    def test_histogram_metric_stats_checked(self):
        with pytest.raises(TelemetryError, match="stat 'p99'"):
            validate_record(snapshot_record(metrics={"h": {"p99": "oops"}}))

    def test_span_status_restricted(self):
        span = {
            "type": "span",
            "name": "s",
            "time": 0.0,
            "wall_ms": 0.1,
            "status": "meh",
            "attributes": {},
        }
        with pytest.raises(TelemetryError, match="ok|error"):
            validate_record(span)


class TestValidateStream:
    def lines(self, *records):
        return [json.dumps(record) for record in records]

    def test_counts_record_kinds(self):
        summary = validate_stream(
            self.lines(
                meta_record(),
                snapshot_record(seq=0),
                snapshot_record(seq=1, metrics={"b": 2.0}),
                {"type": "log", "level": "info", "event": "x"},
            )
        )
        assert summary.records == 4
        assert summary.snapshots == 2
        assert summary.logs == 1
        assert summary.metric_names == ["a", "b"]
        assert summary.meta["run_id"] == "abc123"

    def test_rejects_empty_stream(self):
        with pytest.raises(TelemetryError, match="empty"):
            validate_stream([])

    def test_rejects_non_increasing_seq(self):
        with pytest.raises(TelemetryError, match="not increasing"):
            validate_stream(
                self.lines(meta_record(), snapshot_record(seq=1), snapshot_record(seq=1))
            )

    def test_names_the_bad_line(self):
        with pytest.raises(TelemetryError, match="line 2"):
            validate_stream(self.lines(meta_record()) + ["{not json"])

    def test_counts_span_names(self):
        span = {
            "type": "span",
            "name": "controller.decide",
            "time": 0.0,
            "wall_ms": 0.1,
            "status": "ok",
            "attributes": {},
        }
        summary = validate_stream(self.lines(meta_record(), span, span))
        assert summary.span_names == {"controller.decide": 2}
        assert summary.row()["spans"] == 2


class TestBenchSchemas:
    @pytest.mark.parametrize("name", sorted(BENCH_SCHEMAS))
    def test_repo_bench_files_validate(self, name):
        path = REPO_ROOT / name
        assert path.exists(), f"{name} missing from repository root"
        validate_bench_file(str(path))

    def test_missing_key_rejected(self):
        with pytest.raises(TelemetryError, match="missing required key"):
            validate_bench_record("BENCH_runtime.json", {"benchmark": "x"})

    def test_non_numeric_value_rejected(self):
        record = {key: 1.0 for key in BENCH_SCHEMAS["BENCH_runtime.json"]["numeric"]}
        record["benchmark"] = "runtime"
        record["seed"] = "five"
        with pytest.raises(TelemetryError, match="'seed'"):
            validate_bench_record("BENCH_runtime.json", record)

    def test_unknown_bench_name_rejected(self):
        with pytest.raises(TelemetryError, match="no schema declared"):
            validate_bench_record("BENCH_other.json", {})
