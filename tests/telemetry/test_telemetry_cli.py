"""The --telemetry flags end to end, plus the stream-validator entry point."""

import json

from repro.experiments import matrix
from repro.fleet import cli as fleet_cli
from repro.telemetry import validate_stream_file
from repro.telemetry.__main__ import main as validate_main

FAST_MATRIX = [
    "--qps", "500", "--duration", "0.5", "--warmup", "0.1", "--seed", "5",
]

TINY_FLEET_ARGS = [
    "--machines", "24", "--stages", "2", "--buckets", "2", "--samples", "8",
    "--calibration-qps", "300,900", "--calibration-duration", "0.4",
    "--calibration-warmup", "0.1",
]


def test_matrix_telemetry_flag(tmp_path, capsys):
    stream = tmp_path / "matrix.jsonl"
    code = matrix.main(
        ["--run", "flash-crowd-blind-isolation", "--telemetry", str(stream)]
        + FAST_MATRIX
    )
    assert code == 0
    capsys.readouterr()  # drain the table output
    summary = validate_stream_file(str(stream))
    assert summary.meta["source"] == "matrix"
    assert summary.meta["scenario"] == "flash-crowd-blind-isolation"
    assert summary.snapshots >= 10
    assert summary.span_names.get("controller.decide", 0) >= 1
    assert "latency.p99_over_slo" in summary.metric_names


def test_matrix_telemetry_output_identical(tmp_path, capsys):
    args = ["--run", "standalone", "--out", "json"] + FAST_MATRIX
    assert matrix.main(args) == 0
    plain = capsys.readouterr().out
    assert matrix.main(args + ["--telemetry", str(tmp_path / "t.jsonl")]) == 0
    instrumented = capsys.readouterr().out
    assert json.loads(instrumented) == json.loads(plain)


def test_fleet_telemetry_flag(tmp_path, capsys):
    stream = tmp_path / "fleet.jsonl"
    code = fleet_cli.main(
        TINY_FLEET_ARGS + ["--out", "json", "--telemetry", str(stream)]
    )
    assert code == 0
    rows = json.loads(capsys.readouterr().out)
    assert rows[-1]["status"] == "completed"
    summary = validate_stream_file(str(stream))
    assert summary.meta["source"] == "fleet"
    assert summary.snapshots >= 2 + 2 * 2  # bake + two stages of two buckets
    assert summary.span_names.get("rollout.stage", 0) >= 3
    assert "fleet.p99_ratio" in summary.metric_names


class TestValidatorEntryPoint:
    def make_stream(self, tmp_path):
        from repro.telemetry import SnapshotWriter
        from repro.telemetry.spans import Span

        path = tmp_path / "v.jsonl"
        with SnapshotWriter(str(path), source="test") as writer:
            for index in range(12):
                writer.write_snapshot(float(index), {"x": 1.0})
            writer.write_span(Span(name="controller.decide", time=0.0, wall_ms=0.1))
        return str(path)

    def test_valid_stream_passes_thresholds(self, tmp_path, capsys):
        path = self.make_stream(tmp_path)
        code = validate_main(
            [
                "--validate", path,
                "--min-snapshots", "10",
                "--min-spans", "1",
                "--require-span", "controller.decide",
            ]
        )
        assert code == 0
        assert "12 snapshots" in capsys.readouterr().out

    def test_missing_span_fails(self, tmp_path, capsys):
        path = self.make_stream(tmp_path)
        code = validate_main(["--validate", path, "--require-span", "fleet.shards"])
        assert code == 2

    def test_threshold_shortfall_fails(self, tmp_path):
        path = self.make_stream(tmp_path)
        assert validate_main(["--validate", path, "--min-snapshots", "100"]) == 2

    def test_invalid_stream_fails(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "snapshot"}\n')
        assert validate_main(["--validate", str(path)]) == 2
