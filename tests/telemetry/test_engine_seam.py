"""Tests for the engine's telemetry probe seam.

The seam's contract: probes observe, never perturb.  Subscribing a probe must
leave the domain side of the simulation — callback order, timing, and every
random draw — exactly as it was without the probe, and a probe must never
keep an otherwise-drained engine alive.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import EventPriority


def test_interval_must_be_positive():
    engine = SimulationEngine()
    with pytest.raises(SimulationError, match="positive"):
        engine.subscribe(lambda now: None, 0.0)
    with pytest.raises(SimulationError, match="positive"):
        engine.subscribe(lambda now: None, -1.0)


def test_probe_fires_at_interval_while_work_remains():
    engine = SimulationEngine()
    seen = []
    for delay in (0.05, 0.55, 1.05):
        engine.schedule(delay, lambda: None)
    engine.subscribe(seen.append, 0.25)
    engine.run()
    # Fires at 0.25, 0.50, 0.75, 1.00 while domain events remain, plus the
    # already-queued 1.25 probe after the last domain event at 1.05.
    assert seen == pytest.approx([0.25, 0.5, 0.75, 1.0, 1.25])


def test_probe_never_keeps_engine_alive():
    engine = SimulationEngine()
    engine.schedule(0.1, lambda: None)
    subscription = engine.subscribe(lambda now: None, 0.01)
    final = engine.run()
    assert final <= 0.12
    assert engine.pending_events == 0
    assert subscription.fired > 0


def test_unsubscribe_stops_probing_and_is_idempotent():
    engine = SimulationEngine()
    seen = []
    engine.schedule(1.0, lambda: None)
    subscription = engine.subscribe(seen.append, 0.25)
    engine.run(until=0.5)
    engine.unsubscribe(subscription)
    engine.unsubscribe(subscription)  # idempotent
    assert engine.subscriber_count == 0
    engine.run()
    assert seen == pytest.approx([0.25, 0.5])


def test_dormant_probe_rearms_across_composed_runs():
    engine = SimulationEngine()
    seen = []
    engine.schedule(0.3, lambda: None)
    subscription = engine.subscribe(seen.append, 0.2)
    engine.run(until=1.0)
    fired_first_run = subscription.fired
    assert fired_first_run >= 2  # 0.2 while work remained, 0.4 already queued
    # The queue drained, so the probe went dormant instead of ticking to 1.0.
    assert subscription.event is None
    engine.schedule(0.5, lambda: None)  # now at t=1.0
    engine.run(until=2.0)
    assert subscription.fired > fired_first_run
    assert any(now > 1.0 for now in seen)


def test_probe_observes_settled_state_of_its_timestamp():
    engine = SimulationEngine()
    state = {"value": 0}
    observed = []
    # Domain event and probe collide at t=0.5; TELEMETRY sorts last, so the
    # probe must see the domain mutation.
    engine.schedule(0.5, lambda: state.__setitem__("value", 7))
    engine.schedule(0.5, lambda: None, priority=EventPriority.CONTROLLER)
    engine.subscribe(lambda now: observed.append((now, state["value"])), 0.5)
    engine.run(until=0.5)
    assert observed == [(0.5, 7)]


def test_telemetry_priority_is_lowest():
    assert EventPriority.TELEMETRY > max(
        EventPriority.HARDWARE,
        EventPriority.KERNEL,
        EventPriority.DEFAULT,
        EventPriority.TENANT,
        EventPriority.CONTROLLER,
        EventPriority.MEASUREMENT,
    )


def test_subscribe_unsubscribe_leaves_disabled_state():
    engine = SimulationEngine()
    engine.schedule(0.1, lambda: None)
    subscription = engine.subscribe(lambda now: None, 0.05)
    engine.unsubscribe(subscription)
    assert engine._probes is None  # fully back to the zero-cost disabled path
    before = engine.events_executed
    engine.run()
    assert engine.events_executed - before == 1


def _run_domain_schedule(schedule, seed, probe_interval=None):
    """Run a randomized cascading schedule; returns the domain-side trace.

    Each callback records ``(now, tag, draw)`` and may schedule one follow-up
    from further rng draws, so any perturbation of ordering or randomness
    compounds and becomes visible in the trace.
    """
    engine = SimulationEngine()
    rng = random.Random(seed)
    trace = []

    def fire(tag):
        draw = rng.random()
        trace.append((engine.now, tag, draw))
        if draw < 0.4 and len(trace) < 200:
            engine.schedule(rng.random() * 0.5, fire, tag + 1000)

    for delay, tag in schedule:
        engine.schedule(delay, fire, tag)
    probes = 0
    if probe_interval is not None:
        subscription = engine.subscribe(lambda now: None, probe_interval)
        engine.run()
        probes = subscription.fired
    else:
        engine.run()
    return trace, probes


@settings(max_examples=50, deadline=None)
@given(
    schedule=st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=5.0), st.integers(0, 99)),
        min_size=1,
        max_size=20,
    ),
    seed=st.integers(0, 2**16),
    interval=st.floats(min_value=0.01, max_value=2.0),
)
def test_probes_never_perturb_domain_execution(schedule, seed, interval):
    baseline, _ = _run_domain_schedule(schedule, seed)
    probed, probes = _run_domain_schedule(schedule, seed, probe_interval=interval)
    # Identical (time, tag, rng-draw) sequences: the probe changed nothing
    # about what the domain executed, when, or which random numbers it saw.
    assert probed == baseline
    assert probes >= 1
