"""Tests for span tracing."""

import pytest

from repro.telemetry import SpanTracer
from repro.telemetry.schema import validate_record


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_record_instant_span():
    clock = FakeClock()
    clock.now = 2.5
    tracer = SpanTracer(clock)
    span = tracer.record("controller.decide", decision="hold")
    assert span.time == 2.5
    assert span.sim_duration == 0.0
    assert span.status == "ok"
    assert span.attributes == {"decision": "hold"}
    assert tracer.count == 1


def test_span_context_measures_sim_duration():
    clock = FakeClock()
    tracer = SpanTracer(clock)
    with tracer.span("rollout.stage", stage="5pct") as span:
        clock.now = 3.0
        span.attributes["decision"] = "advance"
    assert span.sim_duration == 3.0
    assert span.wall_ms >= 0.0
    assert span.status == "ok"
    assert span.attributes == {"stage": "5pct", "decision": "advance"}


def test_span_marks_error_and_propagates():
    tracer = SpanTracer(FakeClock())
    with pytest.raises(ValueError):
        with tracer.span("fleet.shards"):
            raise ValueError("boom")
    (span,) = tracer.tail
    assert span.status == "error"
    assert span.attributes["exception"] == "ValueError"


def test_spans_stream_to_sink_on_close():
    received = []
    tracer = SpanTracer(FakeClock(), sink=received.append)
    with tracer.span("a"):
        assert received == []  # emitted only once closed
    tracer.record("b")
    assert [span.name for span in received] == ["a", "b"]


def test_tail_is_bounded():
    tracer = SpanTracer(FakeClock())
    for index in range(SpanTracer.TAIL_SPANS + 50):
        tracer.record(f"span-{index}")
    assert tracer.count == SpanTracer.TAIL_SPANS + 50
    assert len(tracer.tail) == SpanTracer.TAIL_SPANS
    assert tracer.tail[0].name == "span-50"


def test_named_filters_tail():
    tracer = SpanTracer(FakeClock())
    tracer.record("x")
    tracer.record("y")
    tracer.record("x")
    assert len(tracer.named("x")) == 2


def test_as_record_is_schema_valid():
    tracer = SpanTracer(FakeClock())
    span = tracer.record("controller.decide", wall_ms=0.21, decision="cores=6")
    assert validate_record(span.as_record()) == "span"
