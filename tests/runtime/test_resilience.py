"""Crash-hardened runtime: pool-failure retries and cache quarantine.

Failing-before regressions for the robustness PR: a worker process dying
mid-batch (OOM-killed, segfaulted numpy, container eviction) used to
propagate ``BrokenProcessPool`` out of ``ExperimentRunner.map`` and kill the
whole experiment; a corrupt disk-cache entry was deleted and silently
re-written, so a flaky filesystem could loop forever re-reading bad bytes.
Now the pool is rebuilt with capped exponential backoff (degrading to serial
execution as the last resort) and corrupt entries are quarantined on disk —
renamed, never re-read, preserved for post-mortems.
"""

import pickle

from concurrent.futures.process import BrokenProcessPool

import repro.runtime.runner as runner_module
from repro.experiments import scenarios
from repro.runtime import ExperimentRunner, ExperimentTask, ResultCache
from repro.runtime.spec_hash import spec_hash, versioned_namespace

#: Captured before any monkeypatching so FlakyPoolFactory can build real pools.
REAL_PROCESS_POOL = runner_module.ProcessPoolExecutor


def tiny_spec(seed=5):
    return scenarios.standalone(qps=300.0, duration=0.4, warmup=0.1, seed=seed)


def entry_path(directory, spec):
    return directory / (
        spec_hash(spec, namespace=versioned_namespace("single-machine")) + ".pkl"
    )


class AlwaysBrokenPool:
    """A drop-in ProcessPoolExecutor whose every map() dies like a crashed
    worker."""

    def __init__(self, *args, **kwargs):
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def map(self, fn, payloads, chunksize=1):
        raise BrokenProcessPool("a child process terminated abruptly")


class FlakyPoolFactory:
    """Breaks the first ``failures`` pools, then builds real ones."""

    def __init__(self, failures):
        self.remaining = failures
        self.built = 0

    def __call__(self, *args, **kwargs):
        self.built += 1
        if self.remaining > 0:
            self.remaining -= 1
            return AlwaysBrokenPool()
        return REAL_PROCESS_POOL(*args, **kwargs)


class TestPoolCrashRecovery:
    def run_tasks(self, monkeypatch, factory, workers=2, tasks=2):
        monkeypatch.setattr(runner_module, "ProcessPoolExecutor", factory)
        runner = ExperimentRunner(max_workers=workers, cache=ResultCache())
        runner.POOL_BACKOFF_BASE = 0.0  # no real sleeping in tests
        specs = [tiny_spec(seed=seed) for seed in range(1, tasks + 1)]
        outcomes = runner.run_batch([ExperimentTask(spec) for spec in specs])
        return runner, outcomes

    def test_batch_survives_total_pool_loss(self, monkeypatch):
        """Every pool attempt dies; the batch still completes serially."""
        runner, outcomes = self.run_tasks(monkeypatch, AlwaysBrokenPool)
        assert len(outcomes) == 2
        assert all(outcome.result.queries_completed > 0 for outcome in outcomes)
        assert runner.pool_failures == runner.POOL_ATTEMPTS

    def test_transient_pool_crash_is_retried(self, monkeypatch):
        factory = FlakyPoolFactory(failures=1)
        runner, outcomes = self.run_tasks(monkeypatch, factory)
        assert len(outcomes) == 2
        assert runner.pool_failures == 1
        assert factory.built == 2  # one broken pool, one healthy retry

    def test_degraded_results_match_healthy_ones(self, monkeypatch):
        healthy = ExperimentRunner(max_workers=1, cache=ResultCache()).run_batch(
            [ExperimentTask(tiny_spec(seed=1))]
        )[0]
        _, outcomes = self.run_tasks(monkeypatch, AlwaysBrokenPool, tasks=1)
        assert outcomes[0].result.summary() == healthy.result.summary()


class TestCacheQuarantine:
    def seeded_cache(self, tmp_path):
        runner = ExperimentRunner(
            max_workers=1, cache=ResultCache(directory=tmp_path)
        )
        spec = tiny_spec()
        runner.run_batch([ExperimentTask(spec)])
        return spec, entry_path(tmp_path, spec)

    def test_corrupt_entry_quarantined_not_deleted(self, tmp_path):
        spec, path = self.seeded_cache(tmp_path)
        path.write_bytes(b"not a pickle at all")
        cache = ResultCache(directory=tmp_path)
        assert cache.get(path.stem) is None
        assert cache.quarantined == 1
        corpse = path.with_name(path.name + ".corrupt")
        assert not path.exists()
        assert corpse.read_bytes() == b"not a pickle at all"  # evidence kept

    def test_quarantined_entry_is_never_re_read(self, tmp_path):
        spec, path = self.seeded_cache(tmp_path)
        path.write_bytes(b"junk")
        cache = ResultCache(directory=tmp_path)
        assert cache.get(path.stem) is None
        assert cache.get(path.stem) is None  # second read: plain miss
        assert cache.quarantined == 1  # quarantined exactly once

    def test_recompute_overwrites_cleanly_after_quarantine(self, tmp_path):
        spec, path = self.seeded_cache(tmp_path)
        path.write_bytes(b"junk")
        runner = ExperimentRunner(
            max_workers=1, cache=ResultCache(directory=tmp_path)
        )
        outcome = runner.run_batch([ExperimentTask(spec)])[0]
        assert not outcome.from_cache
        with path.open("rb") as handle:
            pickle.load(handle)  # the fresh entry is healthy
        assert path.with_name(path.name + ".corrupt").exists()
        # And the healthy rewrite is a hit for the next process.
        assert ResultCache(directory=tmp_path).get(path.stem) is not None

    def test_quarantined_files_invisible_to_eviction_scan(self, tmp_path):
        spec, path = self.seeded_cache(tmp_path)
        path.write_bytes(b"junk")
        cache = ResultCache(directory=tmp_path)
        cache.get(path.stem)
        # A tiny cap plus fresh entries: the .corrupt corpse neither counts
        # against the cap nor gets evicted.
        capped = ResultCache(directory=tmp_path, max_entries=1)
        capped.put("fresh-entry", {"ok": True})
        assert path.with_name(path.name + ".corrupt").exists()
