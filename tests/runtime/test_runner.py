"""Unit tests for the parallel experiment runtime."""

import dataclasses

import numpy as np
import pytest

from repro.config.schema import ClusterSpec
from repro.experiments import scenarios
from repro.runtime import (
    ExperimentRunner,
    ExperimentTask,
    ResultCache,
    spec_hash,
)


def tiny_spec(seed=5, qps=300.0):
    return scenarios.standalone(qps=qps, duration=0.4, warmup=0.1, seed=seed)


class TestSpecHash:
    def test_equal_specs_hash_identically(self):
        assert spec_hash(tiny_spec()) == spec_hash(tiny_spec())

    def test_any_field_change_changes_hash(self):
        base = tiny_spec()
        assert spec_hash(base) != spec_hash(dataclasses.replace(base, seed=6))
        assert spec_hash(base) != spec_hash(
            dataclasses.replace(base, workload=dataclasses.replace(base.workload, qps=301.0))
        )

    def test_namespace_separates_keys(self):
        assert spec_hash(tiny_spec(), namespace="a") != spec_hash(tiny_spec(), namespace="b")

    def test_hash_is_hex_digest(self):
        digest = spec_hash(tiny_spec())
        assert len(digest) == 64
        int(digest, 16)

    def test_non_experiment_dataclasses_hash_too(self):
        assert spec_hash(ClusterSpec()) == spec_hash(ClusterSpec())
        assert spec_hash(ClusterSpec()) != spec_hash(ClusterSpec(partitions=3))

    def test_dict_keys_keep_their_type(self):
        assert spec_hash({1: "a"}) != spec_hash({"1": "a"})
        assert spec_hash({1: "a", 2: "b"}) == spec_hash({2: "b", 1: "a"})

    def test_frozensets_of_encoded_items_hash(self):
        assert spec_hash(frozenset({1.5, 2.5})) == spec_hash(frozenset({2.5, 1.5}))
        assert spec_hash(frozenset({1.5})) != spec_hash(frozenset({2.5}))

    def test_second_hash_of_same_spec_hits_the_memo(self, monkeypatch):
        import importlib

        # The package re-exports the spec_hash *function* under the same
        # name, so the module itself must be fetched explicitly.
        spec_hash_module = importlib.import_module("repro.runtime.spec_hash")

        spec = tiny_spec()
        first = spec_hash(spec)
        # After the first hash the digest is memoised on the instance...
        memo = getattr(spec, spec_hash_module._MEMO_ATTR)
        assert memo[""] == first

        # ...and the second hash returns without re-encoding the spec.
        def _boom(*_args, **_kwargs):
            raise AssertionError("memoised hash must not re-encode the spec")

        monkeypatch.setattr(spec_hash_module, "canonical_encoding", _boom)
        assert spec_hash(spec) == first

    def test_memo_is_per_namespace_and_not_inherited_by_replace(self):
        spec = tiny_spec()
        assert spec_hash(spec, namespace="a") != spec_hash(spec, namespace="b")
        # Same answers again, now served from the memo.
        assert spec_hash(spec, namespace="a") == spec_hash(tiny_spec(), namespace="a")
        derived = dataclasses.replace(spec, seed=6)
        assert spec_hash(derived) != spec_hash(spec)

    def test_numpy_scalars_hash_like_python_equivalents(self):
        """Specs built from numpy-driven sweeps must hit the same cache keys."""
        from_python = tiny_spec(qps=300.0)
        from_numpy = tiny_spec(qps=np.float64(300.0))
        assert from_python == from_numpy
        assert spec_hash(from_python) == spec_hash(from_numpy)
        assert spec_hash(ClusterSpec(partitions=np.int64(3))) == spec_hash(
            ClusterSpec(partitions=3)
        )


class TestResultCache:
    def test_memory_round_trip(self):
        cache = ResultCache()
        assert cache.get("k") is None
        cache.put("k", {"x": 1})
        assert cache.get("k") == {"x": 1}
        assert cache.hits == 1 and cache.misses == 1 and cache.stores == 1

    def test_disk_round_trip(self, tmp_path):
        first = ResultCache(directory=tmp_path)
        first.put("deadbeef", [1.0, 2.0])
        # A different process would start with an empty memory layer.
        second = ResultCache(directory=tmp_path)
        assert second.get("deadbeef") == [1.0, 2.0]
        assert (tmp_path / "deadbeef.pkl").is_file()

    def test_clear_keeps_disk_layer(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put("k", 42)
        cache.clear()
        assert cache.get("k") == 42

    def test_disk_write_failure_degrades_to_memory_only(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        # An unpicklable payload cannot reach the disk layer, but the store
        # itself must succeed via the memory layer.
        unpicklable = lambda: None  # noqa: E731 - locals don't pickle
        cache.put("k", unpicklable)
        assert cache.get("k") is unpicklable
        assert not (tmp_path / "k.pkl").exists()

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        (tmp_path / "badkey.pkl").write_bytes(b"not a pickle")
        cache = ResultCache(directory=tmp_path)
        assert cache.get("badkey") is None
        assert cache.misses == 1
        # The torn file was dropped so a recompute can overwrite it.
        assert not (tmp_path / "badkey.pkl").exists()
        cache.put("badkey", 7)
        assert ResultCache(directory=tmp_path).get("badkey") == 7


class TestExperimentRunner:
    def test_results_in_task_order_with_labels(self):
        runner = ExperimentRunner(max_workers=1, cache=ResultCache())
        tasks = [
            ExperimentTask(tiny_spec(seed=5), "first"),
            ExperimentTask(tiny_spec(seed=6), "second"),
        ]
        outcomes = runner.run_batch(tasks)
        assert [o.result.scenario for o in outcomes] == ["first", "second"]

    def test_identical_specs_in_batch_run_once(self):
        cache = ResultCache()
        runner = ExperimentRunner(max_workers=1, cache=cache)
        tasks = [ExperimentTask(tiny_spec(), f"label-{i}") for i in range(4)]
        outcomes = runner.run_batch(tasks)
        # One simulation, one store; all four outcomes share the payload.
        assert cache.stores == 1
        assert len({o.key for o in outcomes}) == 1
        assert [o.result.scenario for o in outcomes] == [f"label-{i}" for i in range(4)]
        p99s = {o.result.latency.p99 for o in outcomes}
        assert len(p99s) == 1

    def test_second_batch_served_from_cache(self):
        cache = ResultCache()
        runner = ExperimentRunner(max_workers=1, cache=cache)
        first = runner.run_batch([ExperimentTask(tiny_spec(), "cold")])
        second = runner.run_batch([ExperimentTask(tiny_spec(), "warm")])
        assert not first[0].from_cache
        assert second[0].from_cache
        assert second[0].result.scenario == "warm"
        assert second[0].result.latency == first[0].result.latency
        assert np.array_equal(second[0].latency_samples, first[0].latency_samples)

    def test_cache_hits_never_alias_the_stored_payload(self):
        """Mutating an outcome must not poison later hits for the same spec."""
        cache = ResultCache()
        runner = ExperimentRunner(max_workers=1, cache=cache)
        first = runner.run_batch([ExperimentTask(tiny_spec(), "a")])[0]
        pristine = first.latency_samples.copy()
        pristine_history = list(first.result.secondary_core_history)
        first.latency_samples[:] = -1.0
        first.result.cpu_timeseries.clear()
        first.result.extra["poison"] = 1.0
        second = runner.run_batch([ExperimentTask(tiny_spec(), "b")])[0]
        assert second.from_cache
        assert np.array_equal(second.latency_samples, pristine)
        assert list(second.result.secondary_core_history) == pristine_history
        assert "poison" not in second.result.extra

    def test_use_cache_false_always_recomputes(self):
        cache = ResultCache()
        runner = ExperimentRunner(max_workers=1, cache=cache, use_cache=False)
        runner.run_batch([ExperimentTask(tiny_spec(), "a")])
        outcome = runner.run_batch([ExperimentTask(tiny_spec(), "b")])[0]
        assert not outcome.from_cache
        assert cache.stores == 0

    def test_run_convenience_wrapper(self):
        runner = ExperimentRunner(max_workers=1, cache=ResultCache())
        result = runner.run(tiny_spec(), scenario="solo")
        assert result.scenario == "solo"
        assert result.queries_completed > 0

    def test_map_preserves_order(self):
        runner = ExperimentRunner(max_workers=2, cache=ResultCache())
        results = runner.map(_square, [(i,) for i in range(8)])
        assert results == [i * i for i in range(8)]

    def test_garbage_worker_env_rejected_with_clear_error(self, monkeypatch):
        from repro.errors import ConfigError
        from repro.runtime.runner import WORKERS_ENV

        monkeypatch.setenv(WORKERS_ENV, "abc")
        with pytest.raises(ConfigError, match="REPRO_RUNNER_WORKERS"):
            ExperimentRunner()

    def test_map_caches_when_namespaced(self):
        cache = ResultCache()
        runner = ExperimentRunner(max_workers=1, cache=cache)
        runner.map(_square, [(3,)], cache_namespace="squares/v1")
        before = cache.hits
        again = runner.map(_square, [(3,)], cache_namespace="squares/v1")
        assert again == [9]
        assert cache.hits == before + 1

    def test_map_dedupes_identical_payloads_when_namespaced(self):
        cache = ResultCache()
        runner = ExperimentRunner(max_workers=1, cache=cache)
        results = runner.map(
            _square, [(4,), (4,), (5,)], cache_namespace="squares/v1"
        )
        assert results == [16, 16, 25]
        # The duplicate (4,) payload was computed and stored exactly once.
        assert cache.stores == 2

    def test_map_serves_cached_none_without_recompute(self):
        cache = ResultCache()
        runner = ExperimentRunner(max_workers=1, cache=cache)
        assert runner.map(_none, [(1,)], cache_namespace="n/v1") == [None]
        stores = cache.stores
        assert runner.map(_none, [(1,)], cache_namespace="n/v1") == [None]
        assert cache.stores == stores  # hit, not recomputed and re-stored

    def test_map_keeps_none_results_for_unhashable_args(self):
        runner = ExperimentRunner(max_workers=1, cache=ResultCache())
        results = runner.map(_first_of_pair, [((None, object()),), ((5, object()),)])
        assert results == [None, 5]

    def test_map_dedupes_without_a_cache_namespace(self):
        cache = ResultCache()
        runner = ExperimentRunner(max_workers=1, cache=cache)
        results = runner.map(_record_call, [(4,), (4,), (5,)])
        assert [value for value, _ in results] == [16, 16, 25]
        # Three results but only two computations, and nothing cached.
        assert len({marker for _, marker in results[:2]}) == 1
        assert cache.stores == 0
        # Duplicates are distinct objects: mutating one leaves the other alone.
        results[0].append("mutated")
        assert len(results[1]) == 2

    def test_cache_namespaces_are_version_stamped(self):
        import repro
        from repro.runtime import versioned_namespace

        assert versioned_namespace("single-machine") == (
            f"single-machine/v{repro.__version__}"
        )
        assert spec_hash(tiny_spec(), namespace=versioned_namespace("a")) != spec_hash(
            tiny_spec(), namespace="a/v0.0.0"
        )


def _square(value):
    return value * value


def _none(value):
    return None


def _first_of_pair(pair):
    return pair[0]


_calls = iter(range(1_000_000))


def _record_call(value):
    """Returns [result, unique-marker] so tests can count real computations."""
    return [value * value, next(_calls)]