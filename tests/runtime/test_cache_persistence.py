"""Persistence tests for the on-disk result cache layer (``REPRO_CACHE_DIR``).

The disk layer must behave like a cache, never like a dependency: reloads are
hits, version drift and corruption are silent misses that fall back to
recomputation, and nothing in this file may crash a run.
"""

import os
import pickle

import pytest

import repro
from repro.errors import ConfigError
from repro.experiments import scenarios
from repro.runtime import ExperimentRunner, ExperimentTask, ResultCache
from repro.runtime.cache import (
    CACHE_DIR_ENV,
    CACHE_MAX_ENTRIES_ENV,
    default_cache,
    reset_default_cache,
)
from repro.runtime.runner import reset_default_runner
from repro.runtime.spec_hash import spec_hash, versioned_namespace


def tiny_spec(seed=5):
    return scenarios.standalone(qps=300.0, duration=0.4, warmup=0.1, seed=seed)


def fresh_runner(directory):
    """A runner backed by a brand-new cache object over ``directory`` —
    equivalent to a new process reusing the same cache dir."""
    return ExperimentRunner(max_workers=1, cache=ResultCache(directory=directory))


def entry_path(directory, spec):
    return directory / f"{spec_hash(spec, namespace=versioned_namespace('single-machine'))}.pkl"


class TestReloadHits:
    def test_second_process_reloads_from_disk(self, tmp_path):
        spec = tiny_spec()
        first = fresh_runner(tmp_path).run_batch([ExperimentTask(spec)])
        assert not first[0].from_cache
        assert entry_path(tmp_path, spec).is_file()

        second = fresh_runner(tmp_path).run_batch([ExperimentTask(spec)])
        assert second[0].from_cache
        assert second[0].result.summary() == first[0].result.summary()
        assert (second[0].latency_samples == first[0].latency_samples).all()

    def test_env_variable_wires_default_cache_to_disk(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        reset_default_cache()
        reset_default_runner()
        try:
            cache = default_cache()
            assert cache.directory == tmp_path
            cache.put("probe", {"v": 1})
            assert (tmp_path / "probe.pkl").is_file()
        finally:
            reset_default_cache()
            reset_default_runner()


class TestVersionStamp:
    def test_namespace_carries_package_version(self):
        assert repro.__version__ in versioned_namespace("single-machine")

    def test_version_bump_changes_cache_keys(self, monkeypatch):
        spec = tiny_spec()
        old = spec_hash(spec, namespace=versioned_namespace("single-machine"))
        monkeypatch.setattr(repro, "__version__", "0.0.0-test")
        new = spec_hash(spec, namespace=versioned_namespace("single-machine"))
        assert old != new

    def test_entries_from_another_version_are_misses(self, tmp_path, monkeypatch):
        spec = tiny_spec()
        fresh_runner(tmp_path).run_batch([ExperimentTask(spec)])
        # A "newer simulator" process computes different keys, so the stale
        # entry is simply never consulted and the run recomputes.
        monkeypatch.setattr(repro, "__version__", "0.0.0-test")
        outcome = fresh_runner(tmp_path).run_batch([ExperimentTask(spec)])[0]
        assert not outcome.from_cache


class TestCorruption:
    @pytest.mark.parametrize(
        "corrupt",
        [
            lambda path: path.write_bytes(b""),  # empty file
            lambda path: path.write_bytes(path.read_bytes()[: max(1, path.stat().st_size // 3)]),
            lambda path: path.write_bytes(b"\x80\x05garbage"),  # bad pickle body
            lambda path: path.write_bytes(b"not a pickle at all"),
        ],
        ids=["empty", "truncated", "bad-body", "not-pickle"],
    )
    def test_corrupt_entry_recomputes_instead_of_crashing(self, tmp_path, corrupt):
        spec = tiny_spec()
        baseline = fresh_runner(tmp_path).run_batch([ExperimentTask(spec)])[0]
        path = entry_path(tmp_path, spec)
        corrupt(path)

        outcome = fresh_runner(tmp_path).run_batch([ExperimentTask(spec)])[0]
        assert not outcome.from_cache
        assert outcome.result.summary() == baseline.result.summary()
        # The recompute re-wrote a healthy entry over the corpse.
        with path.open("rb") as handle:
            pickle.load(handle)
        assert fresh_runner(tmp_path).run_batch([ExperimentTask(spec)])[0].from_cache

    def test_unreadable_entry_is_skipped(self, tmp_path):
        spec = tiny_spec()
        fresh_runner(tmp_path).run_batch([ExperimentTask(spec)])
        path = entry_path(tmp_path, spec)
        path.write_bytes(b"junk")
        cache = ResultCache(directory=tmp_path)
        sentinel = object()
        assert cache.get(path.stem, default=sentinel) is sentinel
        assert not path.exists()  # the corpse was removed

    def test_foreign_files_in_cache_dir_are_ignored(self, tmp_path):
        (tmp_path / "README.txt").write_text("not a cache entry")
        spec = tiny_spec()
        outcome = fresh_runner(tmp_path).run_batch([ExperimentTask(spec)])[0]
        assert not outcome.from_cache
        assert fresh_runner(tmp_path).run_batch([ExperimentTask(spec)])[0].from_cache


def _age(path, seconds):
    """Backdate an entry's mtime so LRU ordering is deterministic in tests."""
    stamp = path.stat().st_mtime - seconds
    os.utime(path, (stamp, stamp))


class TestEviction:
    def test_cap_evicts_least_recently_used_entry(self, tmp_path):
        cache = ResultCache(directory=tmp_path, max_entries=2)
        cache.put("a", 1)
        _age(tmp_path / "a.pkl", 30)
        cache.put("b", 2)
        _age(tmp_path / "b.pkl", 20)
        cache.put("c", 3)
        assert sorted(p.stem for p in tmp_path.glob("*.pkl")) == ["b", "c"]
        assert cache.evictions == 1

    def test_disk_hit_refreshes_recency(self, tmp_path):
        seeding = ResultCache(directory=tmp_path, max_entries=2)
        seeding.put("a", 1)
        _age(tmp_path / "a.pkl", 30)
        seeding.put("b", 2)
        _age(tmp_path / "b.pkl", 20)
        # A fresh cache (new process) reads "a" from disk: "a" becomes the
        # most recently used entry, so the next eviction takes "b".
        cache = ResultCache(directory=tmp_path, max_entries=2)
        assert cache.get("a") == 1
        cache.put("c", 3)
        assert sorted(p.stem for p in tmp_path.glob("*.pkl")) == ["a", "c"]

    def test_unbounded_by_default(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        assert cache.max_entries is None
        for index in range(20):
            cache.put(f"k{index}", index)
        assert len(list(tmp_path.glob("*.pkl"))) == 20

    def test_env_variable_sets_the_cap(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_MAX_ENTRIES_ENV, "3")
        cache = ResultCache(directory=tmp_path)
        assert cache.max_entries == 3
        monkeypatch.setenv(CACHE_MAX_ENTRIES_ENV, "0")
        assert ResultCache(directory=tmp_path).max_entries is None
        monkeypatch.setenv(CACHE_MAX_ENTRIES_ENV, "three")
        with pytest.raises(ConfigError):
            ResultCache(directory=tmp_path)
        monkeypatch.setenv(CACHE_MAX_ENTRIES_ENV, "-5")
        with pytest.raises(ConfigError):
            ResultCache(directory=tmp_path)

    def test_negative_constructor_cap_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            ResultCache(directory=tmp_path, max_entries=-1)

    def test_cap_applies_to_entries_from_previous_processes(self, tmp_path):
        seeding = ResultCache(directory=tmp_path)
        for index in range(4):
            seeding.put(f"k{index}", index)
            _age(tmp_path / f"k{index}.pkl", 40 - index)
        # A fresh capped cache counts the pre-existing entries too.
        capped = ResultCache(directory=tmp_path, max_entries=3)
        capped.put("fresh", 99)
        remaining = sorted(p.stem for p in tmp_path.glob("*.pkl"))
        assert len(remaining) == 3
        assert "fresh" in remaining and "k0" not in remaining

    def test_reload_after_eviction_recomputes_and_readmits(self, tmp_path):
        """The acceptance path: evicted entry -> miss -> recompute -> re-store."""
        first = tiny_spec(seed=5)
        second = tiny_spec(seed=6)

        def capped_runner():
            return ExperimentRunner(
                max_workers=1, cache=ResultCache(directory=tmp_path, max_entries=1)
            )

        baseline = capped_runner().run_batch([ExperimentTask(first)])[0]
        _age(entry_path(tmp_path, first), 30)
        capped_runner().run_batch([ExperimentTask(second)])  # evicts ``first``
        assert not entry_path(tmp_path, first).exists()
        assert entry_path(tmp_path, second).exists()

        # A later process asks for ``first`` again: recomputed, identical,
        # and re-admitted to the disk layer (evicting ``second`` in turn).
        outcome = capped_runner().run_batch([ExperimentTask(first)])[0]
        assert not outcome.from_cache
        assert outcome.result.summary() == baseline.result.summary()
        assert entry_path(tmp_path, first).exists()
        assert not entry_path(tmp_path, second).exists()
        # And the freshly re-admitted entry serves the next reload as a hit.
        assert capped_runner().run_batch([ExperimentTask(first)])[0].from_cache
