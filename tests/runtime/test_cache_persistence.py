"""Persistence tests for the on-disk result cache layer (``REPRO_CACHE_DIR``).

The disk layer must behave like a cache, never like a dependency: reloads are
hits, version drift and corruption are silent misses that fall back to
recomputation, and nothing in this file may crash a run.
"""

import pickle

import pytest

import repro
from repro.experiments import scenarios
from repro.runtime import ExperimentRunner, ExperimentTask, ResultCache
from repro.runtime.cache import CACHE_DIR_ENV, default_cache, reset_default_cache
from repro.runtime.runner import reset_default_runner
from repro.runtime.spec_hash import spec_hash, versioned_namespace


def tiny_spec(seed=5):
    return scenarios.standalone(qps=300.0, duration=0.4, warmup=0.1, seed=seed)


def fresh_runner(directory):
    """A runner backed by a brand-new cache object over ``directory`` —
    equivalent to a new process reusing the same cache dir."""
    return ExperimentRunner(max_workers=1, cache=ResultCache(directory=directory))


def entry_path(directory, spec):
    return directory / f"{spec_hash(spec, namespace=versioned_namespace('single-machine'))}.pkl"


class TestReloadHits:
    def test_second_process_reloads_from_disk(self, tmp_path):
        spec = tiny_spec()
        first = fresh_runner(tmp_path).run_batch([ExperimentTask(spec)])
        assert not first[0].from_cache
        assert entry_path(tmp_path, spec).is_file()

        second = fresh_runner(tmp_path).run_batch([ExperimentTask(spec)])
        assert second[0].from_cache
        assert second[0].result.summary() == first[0].result.summary()
        assert (second[0].latency_samples == first[0].latency_samples).all()

    def test_env_variable_wires_default_cache_to_disk(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        reset_default_cache()
        reset_default_runner()
        try:
            cache = default_cache()
            assert cache.directory == tmp_path
            cache.put("probe", {"v": 1})
            assert (tmp_path / "probe.pkl").is_file()
        finally:
            reset_default_cache()
            reset_default_runner()


class TestVersionStamp:
    def test_namespace_carries_package_version(self):
        assert repro.__version__ in versioned_namespace("single-machine")

    def test_version_bump_changes_cache_keys(self, monkeypatch):
        spec = tiny_spec()
        old = spec_hash(spec, namespace=versioned_namespace("single-machine"))
        monkeypatch.setattr(repro, "__version__", "0.0.0-test")
        new = spec_hash(spec, namespace=versioned_namespace("single-machine"))
        assert old != new

    def test_entries_from_another_version_are_misses(self, tmp_path, monkeypatch):
        spec = tiny_spec()
        fresh_runner(tmp_path).run_batch([ExperimentTask(spec)])
        # A "newer simulator" process computes different keys, so the stale
        # entry is simply never consulted and the run recomputes.
        monkeypatch.setattr(repro, "__version__", "0.0.0-test")
        outcome = fresh_runner(tmp_path).run_batch([ExperimentTask(spec)])[0]
        assert not outcome.from_cache


class TestCorruption:
    @pytest.mark.parametrize(
        "corrupt",
        [
            lambda path: path.write_bytes(b""),  # empty file
            lambda path: path.write_bytes(path.read_bytes()[: max(1, path.stat().st_size // 3)]),
            lambda path: path.write_bytes(b"\x80\x05garbage"),  # bad pickle body
            lambda path: path.write_bytes(b"not a pickle at all"),
        ],
        ids=["empty", "truncated", "bad-body", "not-pickle"],
    )
    def test_corrupt_entry_recomputes_instead_of_crashing(self, tmp_path, corrupt):
        spec = tiny_spec()
        baseline = fresh_runner(tmp_path).run_batch([ExperimentTask(spec)])[0]
        path = entry_path(tmp_path, spec)
        corrupt(path)

        outcome = fresh_runner(tmp_path).run_batch([ExperimentTask(spec)])[0]
        assert not outcome.from_cache
        assert outcome.result.summary() == baseline.result.summary()
        # The recompute re-wrote a healthy entry over the corpse.
        with path.open("rb") as handle:
            pickle.load(handle)
        assert fresh_runner(tmp_path).run_batch([ExperimentTask(spec)])[0].from_cache

    def test_unreadable_entry_is_skipped(self, tmp_path):
        spec = tiny_spec()
        fresh_runner(tmp_path).run_batch([ExperimentTask(spec)])
        path = entry_path(tmp_path, spec)
        path.write_bytes(b"junk")
        cache = ResultCache(directory=tmp_path)
        sentinel = object()
        assert cache.get(path.stem, default=sentinel) is sentinel
        assert not path.exists()  # the corpse was removed

    def test_foreign_files_in_cache_dir_are_ignored(self, tmp_path):
        (tmp_path / "README.txt").write_text("not a cache entry")
        spec = tiny_spec()
        outcome = fresh_runner(tmp_path).run_batch([ExperimentTask(spec)])[0]
        assert not outcome.from_cache
        assert fresh_runner(tmp_path).run_batch([ExperimentTask(spec)])[0].from_cache
