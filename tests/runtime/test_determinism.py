"""Determinism regression: serial, 1-worker and N-worker runs are identical.

This is the guard for the parallel runtime: a given ``ExperimentSpec`` + seed
must produce bit-identical results no matter how the batch is executed —
directly in-process, through the runner with one worker, or fanned across
worker processes.  The figure harnesses inherit the same guarantee, which the
figure-level test below checks end to end.
"""

import numpy as np

from repro.config.schema import (
    BlindIsolationSpec,
    CpuBullySpec,
    ExperimentSpec,
    PerfIsoSpec,
    WorkloadSpec,
)
from repro.experiments import figures
from repro.experiments.single_machine import SingleMachineExperiment
from repro.runtime import ExperimentRunner, ExperimentTask, ResultCache


def _specs():
    """Two small specs, one with an active controller + bully."""
    workload = WorkloadSpec(qps=350.0, duration=0.8, warmup=0.2, trace_queries=2000)
    plain = ExperimentSpec(workload=workload, seed=11)
    isolated = ExperimentSpec(
        workload=workload,
        seed=11,
        cpu_bully=CpuBullySpec(threads=8),
        perfiso=PerfIsoSpec(cpu_policy="blind", blind=BlindIsolationSpec(buffer_cores=4)),
    )
    return [plain, isolated]


def _fingerprint(result):
    """Every numeric output a figure row could be built from."""
    return (
        result.latency,
        result.cpu,
        result.queries_submitted,
        result.queries_completed,
        result.queries_dropped,
        result.secondary_progress,
        result.secondary_cpu_seconds,
        result.controller_polls,
        result.controller_updates,
        tuple(result.secondary_core_history),
    )


class TestRunDeterminism:
    def test_serial_one_worker_and_n_workers_agree(self):
        specs = _specs()
        direct = [SingleMachineExperiment(spec).run() for spec in specs]

        tasks = [ExperimentTask(spec) for spec in specs]
        one_worker = ExperimentRunner(max_workers=1, cache=ResultCache()).run_batch(tasks)
        four_workers = ExperimentRunner(max_workers=4, cache=ResultCache()).run_batch(tasks)

        for base, serial, parallel in zip(direct, one_worker, four_workers):
            assert not serial.from_cache and not parallel.from_cache
            assert _fingerprint(base) == _fingerprint(serial.result)
            assert _fingerprint(base) == _fingerprint(parallel.result)
            assert np.array_equal(serial.latency_samples, parallel.latency_samples)

    def test_figure_rows_bit_identical_serial_vs_parallel(self):
        """Identical seeds yield bit-identical figure output either way."""
        kwargs = dict(
            buffer_levels=(4,), qps_levels=(350.0,), duration=0.6, warmup=0.2, seed=11
        )
        serial = figures.fig5_blind_isolation(
            runner=ExperimentRunner(max_workers=1, cache=ResultCache()), **kwargs
        )
        parallel = figures.fig5_blind_isolation(
            runner=ExperimentRunner(max_workers=4, cache=ResultCache()), **kwargs
        )
        assert serial.rows == parallel.rows

class TestTraceDrivenDeterminism:
    """Trace-driven arrival models keep the worker-count guarantee.

    The bursty state path draws from its own named stream and trace replay is
    pure data, so a time-varying workload must be bit-identical run directly,
    through one worker, or fanned across processes.
    """

    def _specs(self):
        from repro.experiments import scenarios as sc

        short = dict(duration=0.8, warmup=0.2, seed=11)
        return [
            sc.bursty_blind_isolation(burst_qps=900.0, base_qps=300.0, **short),
            sc.replayed_trace_showdown(
                policy="blind", base_qps=300.0, burst_qps=900.0, **short
            ),
            sc.diurnal_cycle(
                phase_offset=0.25, peak_qps=700.0, trough_qps=250.0, **short
            ),
        ]

    def test_serial_one_worker_and_n_workers_agree(self):
        specs = self._specs()
        direct = [SingleMachineExperiment(spec).run() for spec in specs]

        tasks = [ExperimentTask(spec) for spec in specs]
        one_worker = ExperimentRunner(max_workers=1, cache=ResultCache()).run_batch(tasks)
        four_workers = ExperimentRunner(max_workers=4, cache=ResultCache()).run_batch(tasks)

        for base, serial, parallel in zip(direct, one_worker, four_workers):
            assert not serial.from_cache and not parallel.from_cache
            assert _fingerprint(base) == _fingerprint(serial.result)
            assert _fingerprint(base) == _fingerprint(parallel.result)
            assert np.array_equal(serial.latency_samples, parallel.latency_samples)
            assert base.extra == serial.result.extra == parallel.result.extra
