"""Tests for the cProfile wrapper behind the CLIs' ``--profile`` flag."""

import pytest

from repro.runtime.profiling import run_profiled


class TestRunProfiled:
    def test_returns_result_and_writes_report(self, tmp_path):
        report = tmp_path / "profile.txt"
        result = run_profiled(lambda: sorted([3, 1, 2]), str(report))
        assert result == [1, 2, 3]
        text = report.read_text()
        assert "cumulative" in text
        assert "function calls" in text

    def test_report_written_even_when_fn_raises(self, tmp_path):
        report = tmp_path / "profile.txt"

        def _boom():
            raise ValueError("deliberate")

        with pytest.raises(ValueError, match="deliberate"):
            run_profiled(_boom, str(report))
        assert "function calls" in report.read_text()


class TestMatrixCliProfileFlag:
    def test_profile_flag_writes_report_next_to_out(self, tmp_path, capsys):
        from repro.experiments import matrix

        report = tmp_path / "matrix_profile.txt"
        code = matrix.main(
            [
                "--run",
                "standalone",
                "--duration",
                "0.4",
                "--warmup",
                "0.1",
                "--seed",
                "9",
                "--workers",
                "0",
                "--out",
                "json",
                "--profile",
                str(report),
            ]
        )
        assert code == 0
        assert "run_scenario" in report.read_text()
        assert "standalone" in capsys.readouterr().out
