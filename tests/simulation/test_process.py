"""Tests for generator-based simulated processes."""

import pytest

from repro.errors import SimulationError
from repro.simulation.process import Delay, SimProcess, WaitFor


class TestSimProcess:
    def test_delays_advance_time(self, engine):
        timeline = []

        def body():
            timeline.append(engine.now)
            yield Delay(0.5)
            timeline.append(engine.now)
            yield 0.25
            timeline.append(engine.now)

        SimProcess(engine, body(), name="p").start()
        engine.run()
        assert timeline == [0.0, 0.5, 0.75]

    def test_on_finish_called(self, engine):
        done = []

        def body():
            yield 0.1

        process = SimProcess(engine, body())
        process.on_finish(lambda: done.append(True))
        process.start()
        engine.run()
        assert done == [True]
        assert process.finished

    def test_start_delay(self, engine):
        seen = []

        def body():
            seen.append(engine.now)
            yield 0.0

        SimProcess(engine, body()).start(delay=1.0)
        engine.run()
        assert seen == [1.0]

    def test_double_start_rejected(self, engine):
        def body():
            yield 0.1

        process = SimProcess(engine, body())
        process.start()
        with pytest.raises(SimulationError):
            process.start()

    def test_wait_for_condition(self, engine):
        flag = {"ready": False}
        seen = []

        def body():
            yield WaitFor(lambda: flag["ready"], interval=0.1)
            seen.append(engine.now)

        SimProcess(engine, body()).start()
        engine.schedule(0.35, lambda: flag.update(ready=True))
        engine.run()
        assert seen and seen[0] >= 0.35

    def test_negative_delay_rejected(self, engine):
        def body():
            yield -1.0

        SimProcess(engine, body()).start()
        with pytest.raises(SimulationError):
            engine.run()

    def test_unsupported_command_rejected(self, engine):
        def body():
            yield "nonsense"

        SimProcess(engine, body()).start()
        with pytest.raises(SimulationError):
            engine.run()

    def test_stop_prevents_further_steps(self, engine):
        seen = []

        def body():
            seen.append("a")
            yield 0.5
            seen.append("b")

        process = SimProcess(engine, body())
        process.start()
        engine.schedule(0.1, process.stop)
        engine.run()
        assert seen == ["a"]
