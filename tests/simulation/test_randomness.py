"""Tests for the named random-stream factory."""

import numpy as np
import pytest

from repro.simulation.randomness import RandomStreams


class TestRandomStreams:
    def test_same_seed_same_draws(self):
        a = RandomStreams(7).stream("arrivals").random(5)
        b = RandomStreams(7).stream("arrivals").random(5)
        assert np.allclose(a, b)

    def test_different_names_independent(self):
        streams = RandomStreams(7)
        a = streams.stream("arrivals").random(5)
        b = streams.stream("service").random(5)
        assert not np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("x").random(5)
        b = RandomStreams(2).stream("x").random(5)
        assert not np.allclose(a, b)

    def test_stream_is_cached(self):
        streams = RandomStreams(3)
        assert streams.stream("x") is streams.stream("x")

    def test_spawn_children_are_deterministic(self):
        a = RandomStreams(9).spawn("machine-1").stream("disk").random(3)
        b = RandomStreams(9).spawn("machine-1").stream("disk").random(3)
        assert np.allclose(a, b)

    def test_spawn_children_are_independent(self):
        parent = RandomStreams(9)
        a = parent.spawn("machine-1").stream("disk").random(3)
        b = parent.spawn("machine-2").stream("disk").random(3)
        assert not np.allclose(a, b)

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RandomStreams("seed")  # type: ignore[arg-type]

    def test_seed_property(self):
        assert RandomStreams(11).seed == 11
