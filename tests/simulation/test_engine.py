"""Tests for the discrete-event simulation engine."""

import pytest

from repro.errors import SimulationError
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import EventPriority


class TestScheduling:
    def test_time_starts_at_zero(self, engine):
        assert engine.now == 0.0

    def test_custom_start_time(self):
        assert SimulationEngine(start_time=5.0).now == 5.0

    def test_events_run_in_time_order(self, engine):
        order = []
        engine.schedule(0.3, order.append, "c")
        engine.schedule(0.1, order.append, "a")
        engine.schedule(0.2, order.append, "b")
        engine.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self, engine):
        seen = []
        engine.schedule(0.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [0.5]
        assert engine.now == 0.5

    def test_same_time_ordered_by_priority(self, engine):
        order = []
        engine.schedule(0.1, order.append, "low", priority=EventPriority.MEASUREMENT)
        engine.schedule(0.1, order.append, "high", priority=EventPriority.HARDWARE)
        engine.run()
        assert order == ["high", "low"]

    def test_same_time_same_priority_is_fifo(self, engine):
        order = []
        for label in "abc":
            engine.schedule(0.1, order.append, label)
        engine.run()
        assert order == ["a", "b", "c"]

    def test_schedule_negative_delay_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.schedule(-0.1, lambda: None)

    def test_schedule_at_in_the_past_rejected(self, engine):
        engine.schedule(1.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(0.5, lambda: None)

    def test_schedule_at_absolute_time(self, engine):
        seen = []
        engine.schedule_at(2.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [2.5]


class TestRunControl:
    def test_run_until_stops_before_later_events(self, engine):
        seen = []
        engine.schedule(1.0, seen.append, "early")
        engine.schedule(3.0, seen.append, "late")
        engine.run(until=2.0)
        assert seen == ["early"]
        assert engine.now == 2.0
        assert engine.pending_events == 1

    def test_run_until_can_be_resumed(self, engine):
        seen = []
        engine.schedule(1.0, seen.append, 1)
        engine.schedule(3.0, seen.append, 3)
        engine.run(until=2.0)
        engine.run(until=4.0)
        assert seen == [1, 3]

    def test_max_events_limits_execution(self, engine):
        seen = []
        for i in range(5):
            engine.schedule(0.1 * (i + 1), seen.append, i)
        engine.run(max_events=2)
        assert seen == [0, 1]

    def test_stop_from_within_event(self, engine):
        seen = []
        engine.schedule(0.1, lambda: (seen.append("first"), engine.stop()))
        engine.schedule(0.2, seen.append, "second")
        engine.run()
        assert seen[0] == "first"
        assert "second" not in seen

    def test_reentrant_run_rejected(self, engine):
        def recurse():
            engine.run()

        engine.schedule(0.1, recurse)
        with pytest.raises(SimulationError):
            engine.run()

    def test_events_executed_counter(self, engine):
        for i in range(4):
            engine.schedule(0.1 * (i + 1), lambda: None)
        engine.run()
        assert engine.events_executed == 4

    def test_stop_hooks_run_after_run(self, engine):
        calls = []
        engine.add_stop_hook(lambda: calls.append("hook"))
        engine.schedule(0.1, lambda: None)
        engine.run()
        assert calls == ["hook"]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, engine):
        seen = []
        event = engine.schedule(0.1, seen.append, "x")
        engine.cancel(event)
        engine.run()
        assert seen == []

    def test_cancel_none_is_noop(self, engine):
        engine.cancel(None)

    def test_cancel_twice_is_safe(self, engine):
        event = engine.schedule(0.1, lambda: None)
        engine.cancel(event)
        engine.cancel(event)
        engine.run()
        assert engine.pending_events == 0

    def test_events_scheduled_from_events(self, engine):
        seen = []

        def first():
            seen.append("first")
            engine.schedule(0.5, lambda: seen.append("nested"))

        engine.schedule(0.1, first)
        engine.run()
        assert seen == ["first", "nested"]
        assert engine.now == pytest.approx(0.6)
