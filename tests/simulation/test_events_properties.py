"""Property tests for the event-queue ordering guarantees.

The simulator's determinism rests on one invariant: events pop in
``(time, priority, insertion order)`` order, under any interleaving of
push, cancel and pop.  These tests drive :class:`EventQueue` with
hypothesis-generated operation sequences against a reference model.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.events import EventPriority, EventQueue

#: Small discrete domains so timestamp and priority collisions are common —
#: ties are exactly where the ordering contract can break.
_TIMES = st.sampled_from([0.0, 0.5, 1.0, 1.0, 1.5, 2.0])
_PRIORITIES = st.sampled_from(
    [EventPriority.HARDWARE, EventPriority.KERNEL, EventPriority.DEFAULT,
     EventPriority.TENANT, EventPriority.CONTROLLER]
)

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("push"), _TIMES, _PRIORITIES),
        st.tuples(st.just("pop")),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=1_000)),
    ),
    max_size=60,
)


class _Model:
    """Reference model: a plain sorted list of live (time, priority, seq)."""

    def __init__(self):
        self.live = {}  # seq -> (time, priority, seq)

    def push(self, seq, time, priority):
        self.live[seq] = (time, priority, seq)

    def cancel(self, seq):
        self.live.pop(seq, None)

    def pop_expected(self):
        if not self.live:
            return None
        key = min(self.live.values())
        del self.live[key[2]]
        return key


def _run_sequence(operations):
    queue = EventQueue()
    model = _Model()
    handles = {}  # seq -> Event
    seq = 0
    for op in operations:
        if op[0] == "push":
            _, time, priority = op
            event = queue.push(time, lambda: None, (seq,), priority=priority)
            handles[seq] = event
            model.push(seq, time, priority)
            seq += 1
        elif op[0] == "cancel":
            live = sorted(model.live)
            if not live:
                continue
            target = live[op[1] % len(live)]
            handles[target].cancel()
            queue.notify_cancel()
            model.cancel(target)
        else:  # pop
            expected = model.pop_expected()
            event = queue.pop()
            if expected is None:
                assert event is None
            else:
                assert (event.time, event.priority) == expected[:2]
                assert event.args == (expected[2],)
        assert len(queue) == len(model.live)
    return queue, model


@given(_OPS)
@settings(max_examples=200, deadline=None)
def test_pop_always_returns_minimum_live_event(operations):
    """At every pop, the queue agrees with a sorted-list reference model."""
    _run_sequence(operations)


@given(_OPS)
@settings(max_examples=200, deadline=None)
def test_draining_yields_sorted_remainder(operations):
    """After any op sequence, draining pops the live set in sorted order."""
    queue, model = _run_sequence(operations)
    expected_order = sorted(model.live.values())
    drained = []
    while True:
        event = queue.pop()
        if event is None:
            break
        drained.append((event.time, event.priority, event.args[0]))
    assert drained == expected_order
    assert len(queue) == 0


@given(_OPS)
@settings(max_examples=200, deadline=None)
def test_pop_batch_matches_naive_single_pop_loop(operations):
    """Batched same-timestamp pops preserve (priority, insertion-order).

    Two queues receive the identical push/cancel sequence; one is drained
    with the naive single-pop loop, the other with :meth:`pop_batch`.  The
    flattened batch drain must equal the single-pop drain event for event,
    and every batch must hold exactly the single-pop run of its timestamp.
    """
    single = EventQueue()
    batched = EventQueue()
    single_handles = {}
    batched_handles = {}
    live = []
    seq = 0
    for op in operations:
        if op[0] == "push":
            _, time, priority = op
            single_handles[seq] = single.push(time, lambda: None, (seq,), priority=priority)
            batched_handles[seq] = batched.push(time, lambda: None, (seq,), priority=priority)
            live.append(seq)
            seq += 1
        elif op[0] == "cancel" and live:
            target = live.pop(op[1] % len(live))
            single_handles[target].cancel()
            single.notify_cancel()
            batched_handles[target].cancel()
            batched.notify_cancel()
        # pops are deferred to the drain phase: the comparison is about
        # drain-order semantics, which any interleaving reduces to.

    naive = []
    while True:
        event = single.pop()
        if event is None:
            break
        naive.append((event.time, event.priority, event.args[0]))

    index = 0
    while True:
        batch = batched.pop_batch()
        if not batch:
            break
        times = {event.time for event in batch}
        assert len(times) == 1, "a batch must share one timestamp"
        run_length = len(batch)
        expected = naive[index: index + run_length]
        assert [(e.time, e.priority, e.args[0]) for e in batch] == expected
        index += run_length
        # The batch must be maximal: the naive drain changes timestamp here.
        if index < len(naive):
            assert naive[index][0] != batch[0].time
    assert index == len(naive)
    assert len(batched) == 0


@given(st.lists(st.tuples(_TIMES, _PRIORITIES), min_size=1, max_size=40))
@settings(max_examples=200, deadline=None)
def test_same_timestamp_ties_break_by_priority_then_insertion(pushes):
    """Pure pushes then full drain: (time, priority, insertion) is total."""
    queue = EventQueue()
    for index, (time, priority) in enumerate(pushes):
        queue.push(time, lambda: None, (index,), priority=priority)
    drained = []
    while True:
        event = queue.pop()
        if event is None:
            break
        drained.append((event.time, event.priority, event.args[0]))
    assert drained == sorted(drained)
    assert [item[2] for item in drained] != [] and len(drained) == len(pushes)