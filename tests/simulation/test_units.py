"""Tests for the unit helpers."""

import pytest

from repro import units


class TestDurations:
    def test_micros_millis_seconds(self):
        assert units.micros(5) == pytest.approx(5e-6)
        assert units.millis(12) == pytest.approx(0.012)
        assert units.seconds(3) == 3.0
        assert units.minutes(2) == 120.0
        assert units.hours(1) == 3600.0

    def test_round_trips(self):
        assert units.to_millis(units.millis(7.5)) == pytest.approx(7.5)
        assert units.to_micros(units.micros(42)) == pytest.approx(42)

    def test_ordering_of_constants(self):
        assert units.MICROSECOND < units.MILLISECOND < units.SECOND < units.MINUTE < units.HOUR


class TestSizes:
    def test_binary_sizes(self):
        assert units.mib(1) == 1024**2
        assert units.gib(2) == 2 * 1024**3
        assert units.KIB == 1024
        assert units.GIB == 1024**3

    def test_decimal_bandwidth(self):
        assert units.mb_per_s(100) == pytest.approx(100e6)
        assert units.MB == 1000 * units.KB
