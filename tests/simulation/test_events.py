"""Tests for the event queue primitives."""

from repro.simulation.events import Event, EventPriority, EventQueue


class TestEventQueue:
    def test_len_counts_live_events(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2

    def test_pop_returns_events_in_order(self):
        queue = EventQueue()
        queue.push(2.0, lambda: None, ("b",))
        queue.push(1.0, lambda: None, ("a",))
        assert queue.pop().args == ("a",)
        assert queue.pop().args == ("b",)
        assert queue.pop() is None

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        first.cancel()
        queue.notify_cancel()
        assert queue.peek_time() == 2.0

    def test_cancelled_events_are_skipped_by_pop(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None, ("a",))
        queue.push(2.0, lambda: None, ("b",))
        first.cancel()
        queue.notify_cancel()
        assert queue.pop().args == ("b",)

    def test_priority_breaks_ties(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None, ("later",), priority=EventPriority.TENANT)
        queue.push(1.0, lambda: None, ("earlier",), priority=EventPriority.HARDWARE)
        assert queue.pop().args == ("earlier",)

    def test_insertion_order_breaks_remaining_ties(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None, ("first",))
        queue.push(1.0, lambda: None, ("second",))
        assert queue.pop().args == ("first",)

    def test_clear_empties_queue(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.clear()
        assert len(queue) == 0
        assert queue.pop() is None

    def test_peek_on_empty_queue(self):
        assert EventQueue().peek_time() is None


class TestEvent:
    def test_ordering_uses_time_then_priority_then_seq(self):
        early = Event(1.0, 0, 0, lambda: None, ())
        late = Event(2.0, 0, 1, lambda: None, ())
        assert early < late
        high = Event(1.0, 0, 2, lambda: None, ())
        low = Event(1.0, 10, 3, lambda: None, ())
        assert high < low
        first = Event(1.0, 5, 4, lambda: None, ())
        second = Event(1.0, 5, 5, lambda: None, ())
        assert first < second

    def test_cancel_marks_event(self):
        event = Event(1.0, 0, 0, lambda: None, ())
        assert not event.cancelled
        event.cancel()
        assert event.cancelled
