"""Tests for the IndexServe primary tenant."""

import dataclasses

import pytest

from repro.config.schema import IndexServeSpec
from repro.errors import TenantError
from repro.hostos.process import TenantCategory
from repro.tenants.indexserve import IndexServeTenant
from repro.units import GIB, millis
from repro.workloads.query_trace import QueryTrace


def small_spec(**overrides):
    base = IndexServeSpec(memory_footprint_bytes=1 * GIB)
    return dataclasses.replace(base, **overrides) if overrides else base


@pytest.fixture
def primary(big_kernel, streams):
    tenant = IndexServeTenant(big_kernel, small_spec(), rng=streams.stream("is"))
    tenant.start()
    return tenant


@pytest.fixture
def trace(streams):
    return QueryTrace(small_spec(), size=50, rng=streams.stream("trace"))


class TestLifecycle:
    def test_start_creates_primary_process(self, primary):
        assert primary.process.category == TenantCategory.PRIMARY
        assert primary.process.memory_bytes == 1 * GIB

    def test_double_start_rejected(self, big_kernel, streams):
        tenant = IndexServeTenant(big_kernel, small_spec(), rng=streams.stream("is2"), name="is2")
        tenant.start()
        with pytest.raises(TenantError):
            tenant.start()

    def test_submit_before_start_rejected(self, big_kernel, streams, trace):
        tenant = IndexServeTenant(big_kernel, small_spec(), rng=streams.stream("is3"), name="is3")
        with pytest.raises(TenantError):
            tenant.submit(trace[0])


class TestQueryProcessing:
    def test_query_completes_and_records_latency(self, engine, primary, trace):
        outcomes = []
        primary.submit(trace[0], callback=outcomes.append)
        engine.run(until=1.0)
        assert primary.completed == 1
        assert primary.dropped == 0
        assert len(outcomes) == 1
        assert not outcomes[0].dropped
        assert outcomes[0].latency > 0
        assert primary.collector.sample_count == 1

    def test_latency_at_least_longest_worker_burst(self, engine, primary, trace):
        query = trace[0]
        outcomes = []
        primary.submit(query, callback=outcomes.append)
        engine.run(until=1.0)
        assert outcomes[0].latency >= max(query.worker_demands)

    def test_many_queries_all_complete_on_idle_machine(self, engine, primary, trace):
        for index in range(20):
            engine.schedule(index * 0.01, primary.submit, trace[index % len(trace)])
        engine.run(until=2.0)
        assert primary.completed == 20
        assert primary.in_flight == 0

    def test_log_written_to_hdd(self, engine, primary, trace):
        primary.submit(trace[0])
        engine.run(until=1.0)
        assert primary.process.io_requests_by_volume.get("hdd", 0) >= 1

    def test_response_sent_on_nic(self, engine, big_kernel, primary, trace):
        primary.submit(trace[0])
        engine.run(until=1.0)
        assert big_kernel.machine.nic.bytes_sent.get("indexserve", 0) > 0

    def test_cache_misses_read_from_ssd(self, engine, big_kernel, streams):
        spec = small_spec(cache_miss_rate=1.0)
        tenant = IndexServeTenant(big_kernel, spec, rng=streams.stream("ssd"), name="is-ssd")
        tenant.start()
        trace = QueryTrace(spec, size=5, rng=streams.stream("ssd-trace"))
        tenant.submit(trace[0])
        engine.run(until=1.0)
        assert tenant.process.io_requests_by_volume.get("ssd", 0) == trace[0].worker_count


class TestTimeouts:
    def test_slow_query_dropped(self, engine, big_kernel, streams):
        spec = small_spec(timeout=millis(1))
        tenant = IndexServeTenant(big_kernel, spec, rng=streams.stream("slow"), name="is-slow")
        tenant.start()
        trace = QueryTrace(small_spec(), size=5, rng=streams.stream("slow-trace"))
        outcomes = []
        tenant.submit(trace[0], callback=outcomes.append)
        engine.run(until=1.0)
        assert tenant.dropped == 1
        assert tenant.completed == 0
        assert outcomes and outcomes[0].dropped
        assert tenant.drop_rate() == 1.0

    def test_timeout_kills_outstanding_workers(self, engine, big_kernel, streams):
        spec = small_spec(timeout=millis(1))
        tenant = IndexServeTenant(big_kernel, spec, rng=streams.stream("kill"), name="is-kill")
        tenant.start()
        trace = QueryTrace(small_spec(), size=5, rng=streams.stream("kill-trace"))
        tenant.submit(trace[0])
        engine.run(until=1.0)
        assert all(t.terminated for t in tenant.process.threads)


class TestAdaptiveParallelism:
    def test_backlog_triggers_worker_splitting(self, engine, big_kernel, streams):
        spec = small_spec(adaptive_threshold=2, adaptive_extra_workers=3)
        tenant = IndexServeTenant(big_kernel, spec, rng=streams.stream("ad"), name="is-ad")
        tenant.start()
        trace = QueryTrace(spec, size=20, rng=streams.stream("ad-trace"))
        for index in range(10):
            tenant.submit(trace[index])
        assert tenant.adaptive_boosts > 0

    def test_splitting_preserves_total_work(self, engine, big_kernel, streams):
        spec = small_spec(adaptive_threshold=0, adaptive_extra_workers=2,
                          adaptive_split_overhead=0.0, cache_miss_rate=0.0,
                          log_bytes_per_query=0)
        tenant = IndexServeTenant(big_kernel, spec, rng=streams.stream("work"), name="is-work")
        tenant.start()
        trace = QueryTrace(spec, size=3, rng=streams.stream("work-trace"))
        query = trace[0]
        tenant.submit(query)
        engine.run(until=1.0)
        expected = query.total_cpu_demand + spec.parse_cost + spec.aggregate_cost
        assert tenant.process.cpu_time == pytest.approx(expected, rel=0.01)

    def test_disabled_adaptive_never_boosts(self, engine, big_kernel, streams):
        spec = small_spec(adaptive_parallelism=False, adaptive_threshold=0)
        tenant = IndexServeTenant(big_kernel, spec, rng=streams.stream("no-ad"), name="is-no-ad")
        tenant.start()
        trace = QueryTrace(spec, size=10, rng=streams.stream("no-ad-trace"))
        for index in range(10):
            tenant.submit(trace[index])
        assert tenant.adaptive_boosts == 0
