"""Tests for the secondary tenants: CPU bully, disk bully, HDFS, ML training."""

import pytest

from repro.config.schema import CpuBullySpec, DiskBullySpec, HdfsSpec, MlTrainingSpec
from repro.errors import TenantError
from repro.hostos.process import TenantCategory
from repro.tenants.cpu_bully import CpuBullyTenant
from repro.tenants.disk_bully import DiskBullyTenant
from repro.tenants.hdfs import HdfsTenant
from repro.tenants.ml_training import MlTrainingTenant
from repro.units import MB, millis


class TestCpuBully:
    def test_uses_all_cores_when_unrestricted(self, engine, kernel):
        bully = CpuBullyTenant(kernel, CpuBullySpec(threads=8, memory_bytes=1024))
        bully.start()
        # CPU time is charged at slice boundaries, so run for a whole number
        # of scheduler quanta to make the expected total exact.
        horizon = kernel.scheduler.spec.quantum * 2
        engine.run(until=horizon)
        cores = kernel.machine.logical_cores
        assert bully.cpu_seconds() == pytest.approx(horizon * cores, rel=0.05)
        assert bully.progress() > 0

    def test_respects_job_affinity(self, engine, kernel):
        job = kernel.create_job_object("secondary")
        job.set_cpu_affinity(frozenset({0, 1}))
        bully = CpuBullyTenant(kernel, CpuBullySpec(threads=8, memory_bytes=1024))
        bully.attach_to_job(job)
        bully.start()
        horizon = kernel.scheduler.spec.quantum * 2
        engine.run(until=horizon)
        assert bully.cpu_seconds() == pytest.approx(horizon * 2, rel=0.1)

    def test_progress_scales_with_iteration_cost(self, engine, kernel):
        bully = CpuBullyTenant(kernel, CpuBullySpec(threads=2, iteration_cost=millis(10), memory_bytes=1024))
        bully.start()
        engine.run(until=0.1)
        assert bully.progress() == pytest.approx(bully.cpu_seconds() / millis(10))

    def test_double_start_rejected(self, kernel):
        bully = CpuBullyTenant(kernel, CpuBullySpec(threads=1, memory_bytes=1024))
        bully.start()
        with pytest.raises(TenantError):
            bully.start()

    def test_stop_terminates_threads(self, engine, kernel):
        bully = CpuBullyTenant(kernel, CpuBullySpec(threads=2, memory_bytes=1024))
        bully.start()
        engine.run(until=0.05)
        bully.stop()
        consumed = bully.cpu_seconds()
        engine.run(until=0.2)
        assert bully.cpu_seconds() == pytest.approx(consumed)

    def test_category_is_secondary(self, kernel):
        bully = CpuBullyTenant(kernel, CpuBullySpec(threads=1, memory_bytes=1024))
        bully.start()
        assert bully.process.category == TenantCategory.SECONDARY


class TestDiskBully:
    def test_generates_hdd_traffic(self, engine, kernel, rng):
        bully = DiskBullyTenant(kernel, DiskBullySpec(threads=2, memory_bytes=1024), rng=rng)
        bully.start()
        engine.run(until=0.5)
        assert bully.requests_completed > 0
        assert bully.progress() == bully.bytes_completed
        assert bully.throughput_bytes_per_s(0.5) > 0

    def test_mixed_read_write(self, engine, kernel, rng):
        bully = DiskBullyTenant(
            kernel, DiskBullySpec(threads=4, read_fraction=0.33, memory_bytes=1024), rng=rng
        )
        bully.start()
        engine.run(until=1.0)
        volume = kernel.machine.hdd
        reads = sum(d.bytes_read for d in volume.disks)
        writes = sum(d.bytes_written for d in volume.disks)
        assert reads > 0 and writes > 0
        assert writes > reads

    def test_stop_halts_new_requests(self, engine, kernel, rng):
        bully = DiskBullyTenant(kernel, DiskBullySpec(threads=1, memory_bytes=1024), rng=rng)
        bully.start()
        engine.run(until=0.2)
        bully.stop()
        done = bully.requests_completed
        engine.run(until=1.0)
        # At most the in-flight request finishes afterwards.
        assert bully.requests_completed <= done + 1

    def test_process_accessor_requires_start(self, kernel, rng):
        bully = DiskBullyTenant(kernel, DiskBullySpec(memory_bytes=1024), rng=rng)
        with pytest.raises(TenantError):
            _ = bully.process


class TestHdfs:
    def test_bandwidth_limits_registered(self, engine, kernel, rng):
        hdfs = HdfsTenant(kernel, HdfsSpec(memory_bytes=1024), rng=rng)
        hdfs.start()
        datanode_limit = kernel.iostack.get_limits(f"{hdfs.name}-datanode", "hdd")[0]
        client_limit = kernel.iostack.get_limits(f"{hdfs.name}-client", "hdd")[0]
        assert datanode_limit == pytest.approx(20 * MB)
        assert client_limit == pytest.approx(60 * MB)

    def test_replication_throughput_respects_cap(self, engine, kernel, rng):
        hdfs = HdfsTenant(kernel, HdfsSpec(memory_bytes=1024), rng=rng)
        hdfs.start()
        engine.run(until=2.0)
        assert hdfs.replication_bytes > 0
        assert hdfs.replication_bytes / 2.0 <= 25 * MB  # 20 MB/s cap plus burst allowance

    def test_progress_counts_both_streams(self, engine, kernel, rng):
        hdfs = HdfsTenant(kernel, HdfsSpec(memory_bytes=1024), rng=rng)
        hdfs.start()
        engine.run(until=1.0)
        assert hdfs.progress() == hdfs.replication_bytes + hdfs.client_bytes

    def test_two_processes_created(self, kernel, rng):
        hdfs = HdfsTenant(kernel, HdfsSpec(memory_bytes=1024), rng=rng)
        hdfs.start()
        assert len(hdfs.processes()) == 2


class TestMlTraining:
    def test_consumes_cpu_and_reads_input(self, engine, kernel, rng):
        ml = MlTrainingTenant(kernel, MlTrainingSpec(threads=4, memory_bytes=1024), rng=rng)
        ml.start()
        engine.run(until=0.5)
        assert ml.cpu_seconds() > 0
        assert ml.progress() > 0
        assert ml.input_bytes_read > 0

    def test_respects_job_affinity(self, engine, kernel, rng):
        job = kernel.create_job_object("secondary")
        job.set_cpu_affinity(frozenset({0}))
        ml = MlTrainingTenant(kernel, MlTrainingSpec(threads=4, memory_bytes=1024), rng=rng)
        ml.attach_to_job(job)
        ml.start()
        horizon = kernel.scheduler.spec.quantum * 2
        engine.run(until=horizon)
        assert ml.cpu_seconds() == pytest.approx(horizon, rel=0.1)

    def test_double_start_rejected(self, kernel, rng):
        ml = MlTrainingTenant(kernel, MlTrainingSpec(memory_bytes=1024), rng=rng)
        ml.start()
        with pytest.raises(TenantError):
            ml.start()
