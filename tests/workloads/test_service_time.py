"""Tests for the service-time and fan-out models."""

import numpy as np
import pytest

from repro.config.schema import IndexServeSpec
from repro.errors import TenantError
from repro.workloads.service_time import WorkerFanoutModel, WorkerServiceTimeModel


class TestWorkerServiceTimeModel:
    def test_samples_positive_and_capped(self, rng):
        spec = IndexServeSpec()
        model = WorkerServiceTimeModel(spec, rng)
        samples = model.sample(1000)
        assert np.all(samples > 0)
        assert np.all(samples <= spec.worker_service_cap)

    def test_zero_count_rejected(self, rng):
        with pytest.raises(TenantError):
            WorkerServiceTimeModel(IndexServeSpec(), rng).sample(0)

    def test_mean_burst_close_to_analytical(self, rng):
        spec = IndexServeSpec()
        model = WorkerServiceTimeModel(spec, rng)
        empirical = model.sample(20000).mean()
        assert empirical == pytest.approx(model.mean_burst(), rel=0.1)

    def test_bursts_are_sub_quantum(self, rng):
        """Worker bursts must be much shorter than the scheduler quantum,
        otherwise the 'short-lived worker threads' premise breaks."""
        model = WorkerServiceTimeModel(IndexServeSpec(), rng)
        assert np.percentile(model.sample(10000), 99) < 0.02


class TestWorkerFanoutModel:
    def test_bounds_respected(self, rng):
        spec = IndexServeSpec()
        model = WorkerFanoutModel(spec, rng)
        for _ in range(500):
            value = model.sample()
            assert spec.workers_per_query_min <= value <= spec.workers_per_query_max

    def test_mean_close_to_spec(self, rng):
        spec = IndexServeSpec()
        model = WorkerFanoutModel(spec, rng)
        values = model.sample_many(5000)
        assert np.mean(values) == pytest.approx(spec.workers_per_query_mean, rel=0.15)

    def test_expected_cpu_demand_matches_standalone_calibration(self, rng):
        """The defaults must put the machine near the paper's 20% busy at
        2,000 QPS: 48 cores * 20% / 2000 QPS ~= 4.8 core-ms per query."""
        spec = IndexServeSpec()
        fanout = WorkerFanoutModel(spec, rng)
        service = WorkerServiceTimeModel(spec, rng)
        demand = fanout.expected_cpu_demand_per_query(service)
        assert 0.003 < demand < 0.007

    def test_inverted_bounds_rejected(self, rng):
        spec = IndexServeSpec()
        object.__setattr__(spec, "workers_per_query_min", 20)
        with pytest.raises(TenantError):
            WorkerFanoutModel(spec, rng)
