"""Tests for the time-varying arrival models and trace synthesis."""

import math

import numpy as np
import pytest

from repro.config.schema import (
    BurstySpec,
    DiurnalSpec,
    FlashCrowdSpec,
    TraceSpec,
    WorkloadSpec,
)
from repro.errors import ConfigError, TenantError
from repro.workloads.arrival_models import (
    BurstyArrival,
    ConstantArrival,
    DiurnalArrival,
    FlashCrowdArrival,
    TraceArrival,
    build_arrival_model,
    synthesize_trace,
)


class TestDiurnalArrival:
    def test_peak_and_trough_at_phase_points(self):
        spec = DiurnalSpec(peak_qps=4000.0, trough_qps=1600.0, period=100.0)
        model = DiurnalArrival(spec)
        assert model.rate_at(0.0) == pytest.approx(4000.0)
        assert model.rate_at(50.0) == pytest.approx(1600.0)
        assert model.rate_at(100.0) == pytest.approx(4000.0)

    def test_matches_the_fleet_formula_bit_for_bit(self):
        """The exact arithmetic the fleet model used before the refactor."""
        spec = DiurnalSpec(
            peak_qps=4200.0, trough_qps=1500.0, period=3600.0, phase_offset=0.375
        )
        model = DiurnalArrival(spec)
        for t in (0.0, 17.3, 900.0, 1800.5, 3599.9, 7200.0):
            mid = (spec.peak_qps + spec.trough_qps) / 2.0
            amplitude = (spec.peak_qps - spec.trough_qps) / 2.0
            phase = 2.0 * math.pi * (t / spec.period + spec.phase_offset)
            expected = max(1.0, mid + amplitude * math.cos(phase))
            assert model.rate_at(t) == expected

    def test_phase_offset_shifts_the_peak(self):
        shifted = DiurnalArrival(DiurnalSpec(period=100.0, phase_offset=0.5))
        assert shifted.rate_at(0.0) == pytest.approx(1600.0)
        assert shifted.rate_at(50.0) == pytest.approx(4000.0)

    def test_floor_binds_when_trough_is_tiny(self):
        model = DiurnalArrival(
            DiurnalSpec(peak_qps=10.0, trough_qps=0.5, period=10.0, floor_qps=2.0)
        )
        assert model.rate_at(5.0) == 2.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            DiurnalSpec(peak_qps=100.0, trough_qps=100.0)
        with pytest.raises(ConfigError):
            DiurnalSpec(period=0.0)
        with pytest.raises(ConfigError):
            DiurnalSpec(phase_offset=1.0)


class TestBurstyArrival:
    def _model(self, seed=3, horizon=30.0):
        spec = BurstySpec(
            base_qps=1000.0,
            burst_qps=5000.0,
            mean_normal_seconds=2.0,
            mean_burst_seconds=0.5,
        )
        return BurstyArrival(spec, horizon=horizon, rng=np.random.default_rng(seed))

    def test_rates_alternate_between_the_two_levels(self):
        model = self._model()
        rates = {model.rate_at(t) for t in np.linspace(0.0, 30.0, 400)}
        assert rates <= {1000.0, 5000.0}
        assert len(rates) == 2  # long enough horizon to visit both states

    def test_starts_in_the_normal_state(self):
        assert self._model().rate_at(0.0) == 1000.0

    def test_deterministic_given_the_same_stream(self):
        a, b = self._model(seed=7), self._model(seed=7)
        times = np.linspace(0.0, 30.0, 200)
        assert [a.rate_at(t) for t in times] == [b.rate_at(t) for t in times]

    def test_last_state_persists_past_the_horizon(self):
        model = self._model()
        assert model.rate_at(1e6) == model.rate_at(1e9)

    def test_segments_cover_the_horizon(self):
        assert self._model(horizon=50.0).segments >= 2

    def test_validation(self):
        with pytest.raises(ConfigError):
            BurstySpec(base_qps=2000.0, burst_qps=2000.0)
        with pytest.raises(ConfigError):
            BurstySpec(mean_normal_seconds=0.0)
        with pytest.raises(TenantError):
            BurstyArrival(BurstySpec(), horizon=0.0, rng=np.random.default_rng(0))


class TestFlashCrowdArrival:
    SPEC = FlashCrowdSpec(
        base_qps=1000.0, spike_qps=3000.0, start=10.0, ramp=2.0, hold=4.0, decay=2.0
    )

    def test_piecewise_shape(self):
        model = FlashCrowdArrival(self.SPEC)
        assert model.rate_at(0.0) == 1000.0
        assert model.rate_at(10.0) == 1000.0  # spike starts here
        assert model.rate_at(11.0) == pytest.approx(2000.0)  # mid-ramp
        assert model.rate_at(13.0) == 3000.0  # holding
        assert model.rate_at(17.0) == pytest.approx(2000.0)  # mid-decay
        assert model.rate_at(18.0) == 1000.0
        assert model.rate_at(100.0) == 1000.0

    def test_instant_ramp_and_decay(self):
        spec = FlashCrowdSpec(
            base_qps=500.0, spike_qps=1500.0, start=1.0, ramp=0.0, hold=2.0, decay=0.0
        )
        model = FlashCrowdArrival(spec)
        assert model.rate_at(0.5) == 500.0
        assert model.rate_at(2.0) == 1500.0
        assert model.rate_at(3.5) == 500.0

    def test_peak_rate_depends_on_the_horizon(self):
        model = FlashCrowdArrival(self.SPEC)
        assert model.peak_rate(5.0) == 1000.0
        assert model.peak_rate(20.0) == 3000.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            FlashCrowdSpec(base_qps=2000.0, spike_qps=1000.0)
        with pytest.raises(ConfigError):
            FlashCrowdSpec(start=-1.0)


class TestTraceArrival:
    def test_piecewise_constant_with_cyclic_wrap(self):
        trace = TraceSpec(bucket_seconds=2.0, qps=(100.0, 200.0, 300.0))
        model = TraceArrival(trace)
        assert model.rate_at(0.0) == 100.0
        assert model.rate_at(1.99) == 100.0
        assert model.rate_at(2.0) == 200.0
        assert model.rate_at(5.0) == 300.0
        assert model.rate_at(6.0) == 100.0  # wrapped around
        assert model.rate_at(-1.0) == 100.0  # clamped

    def test_validation(self):
        with pytest.raises(ConfigError):
            TraceSpec(bucket_seconds=0.0, qps=(1.0,))
        with pytest.raises(ConfigError):
            TraceSpec(bucket_seconds=1.0, qps=())
        with pytest.raises(ConfigError):
            TraceSpec(bucket_seconds=1.0, qps=(1.0, -2.0))
        with pytest.raises(ConfigError):
            TraceSpec(bucket_seconds=1.0, qps=(0.0, 0.0))
        with pytest.raises(ConfigError):
            TraceSpec(bucket_seconds=1.0, qps=(float("nan"),))


class TestWorkloadSpecArrival:
    def test_at_most_one_model(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(diurnal=DiurnalSpec(), bursty=BurstySpec())

    def test_models_require_poisson_arrivals(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(diurnal=DiurnalSpec(), arrival_process="uniform")

    def test_arrival_kind_reporting(self):
        assert WorkloadSpec().arrival_kind == "constant"
        assert WorkloadSpec(trace=TraceSpec(1.0, (5.0,))).arrival_kind == "trace"

    def test_mean_qps_per_model(self):
        assert WorkloadSpec(qps=700.0).mean_qps == 700.0
        # One full diurnal period: the sine terms cancel and the window mean
        # is exactly the midpoint.
        full_cycle = WorkloadSpec(
            duration=10.0,
            warmup=1.0,
            diurnal=DiurnalSpec(peak_qps=400.0, trough_qps=200.0, period=11.0),
        )
        assert full_cycle.mean_qps == pytest.approx(300.0)
        # An 11 s window at the trough of an hour-long period sizes for the
        # trough, not the midpoint.
        at_trough = WorkloadSpec(
            duration=10.0,
            warmup=1.0,
            diurnal=DiurnalSpec(
                peak_qps=4000.0, trough_qps=1600.0, period=3600.0, phase_offset=0.5
            ),
        )
        assert at_trough.mean_qps == pytest.approx(1600.0, rel=1e-3)
        # Default window: 11 s over a 2 s trace = 5 full cycles + 1 s of the
        # first bucket -> (5*400 + 100) / 11.
        trace = WorkloadSpec(trace=TraceSpec(1.0, (100.0, 300.0)))
        assert trace.mean_qps == pytest.approx(2100.0 / 11.0)

    def test_trace_mean_qps_covers_only_the_replayed_window(self):
        # 1 s window over a 40 s front-loaded trace: only the first bucket
        # (100 qps) is ever replayed.
        front_loaded = WorkloadSpec(
            duration=1.0,
            warmup=0.0,
            trace=TraceSpec(10.0, (100.0, 0.0, 0.0, 0.0)),
        )
        assert front_loaded.mean_qps == pytest.approx(100.0)
        # 15 s window: 10 s at 100 qps + 5 s idle.
        partial = WorkloadSpec(
            duration=15.0,
            warmup=0.0,
            trace=TraceSpec(10.0, (100.0, 0.0, 0.0, 0.0)),
        )
        assert partial.mean_qps == pytest.approx(100.0 * 10.0 / 15.0)
        # 80 s window: two full cyclic passes average the whole trace.
        wrapped = WorkloadSpec(
            duration=80.0,
            warmup=0.0,
            trace=TraceSpec(10.0, (100.0, 0.0, 0.0, 0.0)),
        )
        assert wrapped.mean_qps == pytest.approx(25.0)
        flash = WorkloadSpec(
            duration=9.0,
            warmup=1.0,
            flash_crowd=FlashCrowdSpec(
                base_qps=1000.0, spike_qps=2000.0, start=2.0, ramp=2.0, hold=2.0, decay=2.0
            ),
        )
        # 0.5*2 + 2 + 0.5*2 = 4 spike-equivalent seconds over 10 s.
        assert flash.mean_qps == pytest.approx(1000.0 + 1000.0 * 4.0 / 10.0)

    def test_flash_crowd_mean_qps_ending_mid_spike(self):
        # Window ends halfway up the ramp: the in-window excess is the
        # triangle integral 1^2/(2*2) = 0.25 spike-equivalent seconds.
        mid_ramp = WorkloadSpec(
            duration=2.5,
            warmup=0.5,
            flash_crowd=FlashCrowdSpec(
                base_qps=1000.0, spike_qps=2000.0, start=2.0, ramp=2.0, hold=5.0, decay=2.0
            ),
        )
        assert mid_ramp.mean_qps == pytest.approx(1000.0 + 1000.0 * 0.25 / 3.0)
        # Window ends mid-hold: full ramp (1 s) plus one held second.
        mid_hold = WorkloadSpec(
            duration=4.5,
            warmup=0.5,
            flash_crowd=FlashCrowdSpec(
                base_qps=1000.0, spike_qps=2000.0, start=2.0, ramp=2.0, hold=5.0, decay=2.0
            ),
        )
        assert mid_hold.mean_qps == pytest.approx(1000.0 + 1000.0 * 2.0 / 5.0)


class TestBuildArrivalModel:
    def test_constant_workload_returns_none(self):
        assert build_arrival_model(WorkloadSpec()) is None

    def test_dispatch(self):
        rng = np.random.default_rng(0)
        cases = [
            (WorkloadSpec(diurnal=DiurnalSpec()), DiurnalArrival),
            (WorkloadSpec(bursty=BurstySpec()), BurstyArrival),
            (WorkloadSpec(flash_crowd=FlashCrowdSpec()), FlashCrowdArrival),
            (WorkloadSpec(trace=TraceSpec(1.0, (5.0,))), TraceArrival),
        ]
        for workload, expected in cases:
            assert isinstance(build_arrival_model(workload, rng=rng), expected)

    def test_bursty_requires_a_stream(self):
        with pytest.raises(TenantError):
            build_arrival_model(WorkloadSpec(bursty=BurstySpec()))


class TestSynthesizeTrace:
    def test_bucket_midpoint_sampling(self):
        model = ConstantArrival(123.0)
        trace = synthesize_trace(model, duration=10.0, bucket_seconds=1.0)
        assert len(trace.qps) == 10
        assert set(trace.qps) == {123.0}
        assert trace.source == "synthetic:constant"

    def test_replay_reproduces_the_model_at_midpoints(self):
        model = DiurnalArrival(DiurnalSpec(peak_qps=900.0, trough_qps=300.0, period=20.0))
        trace = synthesize_trace(model, duration=20.0, bucket_seconds=0.5)
        replay = TraceArrival(trace)
        for index in range(len(trace.qps)):
            midpoint = (index + 0.5) * trace.bucket_seconds
            assert replay.rate_at(midpoint) == model.rate_at(midpoint)

    def test_synthesis_is_itself_replay_stable(self):
        """Synthesizing from a replayed trace returns the same buckets."""
        model = FlashCrowdArrival(FlashCrowdSpec())
        first = synthesize_trace(model, duration=12.0, bucket_seconds=0.5)
        second = synthesize_trace(
            TraceArrival(first), duration=12.0, bucket_seconds=0.5
        )
        assert first.qps == second.qps

    def test_validation(self):
        with pytest.raises(TenantError):
            synthesize_trace(ConstantArrival(1.0), duration=0.0, bucket_seconds=1.0)


class TestTraceSpecBucketValidation:
    def test_non_finite_bucket_seconds_rejected(self):
        for bad in (float("nan"), float("inf")):
            with pytest.raises(ConfigError, match="bucket_seconds"):
                TraceSpec(bucket_seconds=bad, qps=(1.0,))

    def test_nan_header_fails_at_load_time(self):
        """A malformed header must fail on load, not mid-simulation."""
        from repro.config.traces import parse_trace_text

        text = '{"bucket_seconds": NaN}\n{"t": 0.0, "qps": 5.0}\n'
        with pytest.raises(ConfigError):
            parse_trace_text(text, "jsonl")


class TestPeakIn:
    def test_constant_and_trace(self):
        assert ConstantArrival(50.0).peak_in(0.0, 10.0) == 50.0
        trace = TraceArrival(TraceSpec(1.0, (100.0, 900.0, 200.0)))
        assert trace.peak_in(0.0, 0.9) == 100.0
        assert trace.peak_in(0.5, 1.5) == 900.0
        assert trace.peak_in(2.0, 2.9) == 200.0
        # Wrapping window: bucket 2 (200) plus cyclic bucket 0 (100).
        assert trace.peak_in(2.0, 3.5) == 200.0
        # Window spanning the whole (cyclic) trace sees the global peak.
        assert trace.peak_in(0.0, 30.0) == 900.0

    def test_diurnal_peak_inside_and_outside_the_window(self):
        model = DiurnalArrival(
            DiurnalSpec(peak_qps=4000.0, trough_qps=1600.0, period=100.0, phase_offset=0.5)
        )
        # Peak at t=50 (phase 0.5 shifts it half a period).
        assert model.peak_in(40.0, 60.0) == 4000.0
        # Trough-side window: maximum at an endpoint, well below the peak.
        assert model.peak_in(90.0, 110.0) == pytest.approx(model.rate_at(90.0))
        assert model.peak_in(90.0, 110.0) < 4000.0

    def test_flash_crowd_narrow_spike_never_missed(self):
        spec = FlashCrowdSpec(
            base_qps=500.0, spike_qps=5000.0, start=1.05, ramp=0.01, hold=0.01, decay=0.01
        )
        model = FlashCrowdArrival(spec)
        # A 30 ms spike inside a 10 s window: sampling at ~78 ms steps would
        # miss it; peak_in finds it analytically.
        assert model.peak_in(1.0, 10.0) == 5000.0
        assert model.peak_in(2.0, 10.0) == 500.0

    def test_bursty_short_burst_never_missed(self):
        spec = BurstySpec(
            base_qps=500.0,
            burst_qps=5000.0,
            mean_normal_seconds=5.0,
            mean_burst_seconds=0.01,
        )
        model = BurstyArrival(spec, horizon=60.0, rng=np.random.default_rng(11))
        boundaries = model._boundaries
        # Find an actual burst segment and ask about a window containing it.
        burst_index = model._states.index(1)
        start = boundaries[burst_index - 1] if burst_index else 0.0
        assert model.peak_in(start - 0.5, boundaries[burst_index] + 0.5) == 5000.0
        # A window strictly inside a normal segment sees only the base rate.
        normal_index = model._states.index(0)
        if normal_index == 0 and boundaries[0] > 0.2:
            assert model.peak_in(0.0, boundaries[0] - 0.1) == 500.0


class TestFlashCrowdSpikeWidth:
    def test_zero_width_spike_rejected(self):
        with pytest.raises(ConfigError, match="non-zero spike"):
            FlashCrowdSpec(start=2.0, ramp=0.0, hold=0.0, decay=0.0)
