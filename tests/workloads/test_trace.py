"""Tests for the synthetic query trace generator."""

import numpy as np
import pytest

from repro.config.schema import IndexServeSpec
from repro.errors import TenantError
from repro.workloads.query_trace import QueryTrace


class TestQueryTrace:
    def test_trace_size(self, rng):
        trace = QueryTrace(IndexServeSpec(), size=100, rng=rng)
        assert len(trace) == 100

    def test_zero_size_rejected(self, rng):
        with pytest.raises(TenantError):
            QueryTrace(IndexServeSpec(), size=0, rng=rng)

    def test_worker_counts_within_bounds(self, rng):
        spec = IndexServeSpec()
        trace = QueryTrace(spec, size=500, rng=rng)
        for query in trace.queries():
            assert spec.workers_per_query_min <= query.worker_count <= spec.workers_per_query_max
            assert len(query.cache_misses) == query.worker_count

    def test_mean_worker_count_near_spec(self, rng):
        spec = IndexServeSpec()
        trace = QueryTrace(spec, size=3000, rng=rng)
        assert trace.mean_worker_count() == pytest.approx(spec.workers_per_query_mean, rel=0.2)

    def test_miss_rate_near_spec(self, rng):
        spec = IndexServeSpec(cache_miss_rate=0.3)
        trace = QueryTrace(spec, size=3000, rng=rng)
        assert trace.mean_miss_rate() == pytest.approx(0.3, abs=0.05)

    def test_demands_positive_and_capped(self, rng):
        spec = IndexServeSpec()
        trace = QueryTrace(spec, size=500, rng=rng)
        for query in trace.queries():
            for demand in query.worker_demands:
                assert 0 < demand <= spec.worker_service_cap

    def test_deterministic_for_same_rng_seed(self):
        spec = IndexServeSpec()
        a = QueryTrace(spec, size=50, rng=np.random.default_rng(1))
        b = QueryTrace(spec, size=50, rng=np.random.default_rng(1))
        assert a.queries() == b.queries()

    def test_cycle_wraps_around(self, rng):
        trace = QueryTrace(IndexServeSpec(), size=3, rng=rng)
        cycle = trace.cycle()
        ids = [next(cycle).query_id for _ in range(7)]
        assert ids == [0, 1, 2, 0, 1, 2, 0]

    def test_total_cpu_demand_property(self, rng):
        trace = QueryTrace(IndexServeSpec(), size=10, rng=rng)
        query = trace[0]
        assert query.total_cpu_demand == pytest.approx(sum(query.worker_demands))


class TestInlinedGenerationMatchesModels:
    """QueryTrace inlines the fan-out/service-time models for speed; the two
    formulations must stay draw-for-draw identical or traces silently drift
    from the documented model."""

    def test_trace_equals_model_driven_reconstruction(self):
        from repro.units import millis
        from repro.workloads.service_time import (
            WorkerFanoutModel,
            WorkerServiceTimeModel,
        )

        spec = IndexServeSpec()
        trace = QueryTrace(spec, size=200, rng=np.random.default_rng(123))

        # Rebuild the same trace through the reference model objects, drawing
        # from an identically-seeded generator in the documented order.
        rng = np.random.default_rng(123)
        fanout = WorkerFanoutModel(spec, rng)
        service = WorkerServiceTimeModel(spec, rng)
        for query in trace.queries():
            workers = fanout.sample()
            demands = tuple(float(d) for d in service.sample(workers))
            misses = tuple(bool(m) for m in rng.random(workers) < spec.cache_miss_rate)
            assert query.worker_demands == demands
            assert query.cache_misses == misses
