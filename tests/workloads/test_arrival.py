"""Tests for the open-loop clients."""

import numpy as np
import pytest

from repro.config.schema import IndexServeSpec
from repro.errors import TenantError
from repro.workloads.arrival import OpenLoopClient, VariableRateClient
from repro.workloads.query_trace import QueryTrace


@pytest.fixture
def trace(rng):
    return QueryTrace(IndexServeSpec(), size=100, rng=rng)


class TestOpenLoopClient:
    def test_submission_rate_close_to_target(self, engine, trace):
        arrivals = []
        client = OpenLoopClient(
            engine, trace, qps=500, duration=2.0,
            submit=lambda q, t: arrivals.append(t),
            rng=np.random.default_rng(3),
        )
        client.start()
        engine.run(until=2.5)
        assert len(arrivals) == pytest.approx(1000, rel=0.15)
        assert client.finished

    def test_uniform_arrivals_are_evenly_spaced(self, engine, trace):
        arrivals = []
        client = OpenLoopClient(
            engine, trace, qps=100, duration=1.0,
            submit=lambda q, t: arrivals.append(t),
            rng=np.random.default_rng(3),
            arrival_process="uniform",
        )
        client.start()
        engine.run(until=1.5)
        gaps = np.diff(arrivals)
        assert np.allclose(gaps, 0.01)

    def test_open_loop_ignores_server_speed(self, engine, trace):
        """Arrivals keep coming even if the 'server' never responds."""
        count = [0]
        client = OpenLoopClient(
            engine, trace, qps=200, duration=1.0,
            submit=lambda q, t: count.__setitem__(0, count[0] + 1),
            rng=np.random.default_rng(3),
        )
        client.start()
        engine.run(until=1.2)
        assert count[0] > 150

    def test_invalid_parameters_rejected(self, engine, trace, rng):
        with pytest.raises(TenantError):
            OpenLoopClient(engine, trace, qps=0, duration=1, submit=lambda q, t: None, rng=rng)
        with pytest.raises(TenantError):
            OpenLoopClient(engine, trace, qps=10, duration=0, submit=lambda q, t: None, rng=rng)
        with pytest.raises(TenantError):
            OpenLoopClient(engine, trace, qps=10, duration=1, submit=lambda q, t: None,
                           rng=rng, arrival_process="weird")

    def test_no_arrivals_after_duration(self, engine, trace):
        arrivals = []
        client = OpenLoopClient(
            engine, trace, qps=100, duration=0.5,
            submit=lambda q, t: arrivals.append(t),
            rng=np.random.default_rng(3),
        )
        client.start()
        engine.run(until=5.0)
        assert all(t <= 0.5 for t in arrivals)


class TestVariableRateClient:
    def test_rate_follows_curve(self, engine, trace):
        arrivals = []
        client = VariableRateClient(
            engine, trace,
            rate_fn=lambda t: 1000 if t < 1.0 else 100,
            duration=2.0,
            submit=lambda q, t: arrivals.append(t),
            rng=np.random.default_rng(4),
        )
        client.start()
        engine.run(until=2.5)
        first_half = sum(1 for t in arrivals if t < 1.0)
        second_half = sum(1 for t in arrivals if t >= 1.0)
        assert first_half > 5 * second_half

    def test_minimum_rate_enforced(self, engine, trace):
        client = VariableRateClient(
            engine, trace, rate_fn=lambda t: -50, duration=1.0,
            submit=lambda q, t: None, rng=np.random.default_rng(4), min_rate=10,
        )
        assert client.current_rate(0.0) == 10

    def test_invalid_duration_rejected(self, engine, trace, rng):
        with pytest.raises(TenantError):
            VariableRateClient(engine, trace, rate_fn=lambda t: 10, duration=0,
                               submit=lambda q, t: None, rng=rng)


class TestZeroRateWindows:
    def test_idle_recheck_keeps_idle_windows_idle(self, engine, trace):
        """With idle_recheck a zero-rate window emits nothing at all.

        The experiment harness passes min_rate=1e-9 + idle_recheck for
        trace-driven workloads so idle trace buckets do not silently run at
        the client's default 1 qps floor.
        """
        arrivals = []
        client = VariableRateClient(
            engine, trace, rate_fn=lambda t: 0.0, duration=5.0,
            submit=lambda q, t: arrivals.append(t),
            rng=np.random.default_rng(3),
            min_rate=1e-9, idle_recheck=0.1,
        )
        client.start()
        engine.run(until=5.5)
        assert arrivals == []
        assert client.finished

    def test_idle_recheck_recovers_when_the_rate_returns(self, engine, trace):
        """An idle leading bucket must not swallow the live rest of the run."""
        arrivals = []
        client = VariableRateClient(
            engine, trace, rate_fn=lambda t: 0.0 if t < 5.0 else 200.0,
            duration=10.0,
            submit=lambda q, t: arrivals.append(t),
            rng=np.random.default_rng(3),
            min_rate=1e-9, idle_recheck=0.05,
        )
        client.start()
        engine.run(until=10.5)
        assert all(t >= 5.0 for t in arrivals)
        assert len(arrivals) == pytest.approx(1000, rel=0.15)

    def test_idle_rechecks_consume_no_rng_draws(self, engine, trace):
        """Gap draws after an idle window match a run with no idle window."""
        def run(rate_fn, engine):
            arrivals = []
            client = VariableRateClient(
                engine, trace, rate_fn=rate_fn, duration=4.0,
                submit=lambda q, t: arrivals.append(t),
                rng=np.random.default_rng(9),
                min_rate=1e-9, idle_recheck=0.25,
            )
            client.start()
            engine.run(until=4.5)
            return arrivals

        from repro.simulation.engine import SimulationEngine

        live_only = run(lambda t: 100.0, SimulationEngine())
        with_idle = run(lambda t: 0.0 if t < 1.0 else 100.0, SimulationEngine())
        # The first post-idle gap uses the same draw the live run used first.
        assert len(with_idle) > 0
        offset = with_idle[0] - (live_only[0] + 1.0)
        assert abs(offset) < 0.25 + 1e-9  # within one recheck of the shifted start

    def test_default_floor_still_applies_when_unspecified(self, engine, trace):
        arrivals = []
        client = VariableRateClient(
            engine, trace, rate_fn=lambda t: 0.0, duration=100.0,
            submit=lambda q, t: arrivals.append(t),
            rng=np.random.default_rng(3),
        )
        client.start()
        engine.run(until=100.0)
        assert len(arrivals) == pytest.approx(100, rel=0.3)
