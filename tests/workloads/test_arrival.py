"""Tests for the open-loop clients."""

import numpy as np
import pytest

from repro.config.schema import IndexServeSpec
from repro.errors import TenantError
from repro.workloads.arrival import OpenLoopClient, VariableRateClient
from repro.workloads.query_trace import QueryTrace


@pytest.fixture
def trace(rng):
    return QueryTrace(IndexServeSpec(), size=100, rng=rng)


class TestOpenLoopClient:
    def test_submission_rate_close_to_target(self, engine, trace):
        arrivals = []
        client = OpenLoopClient(
            engine, trace, qps=500, duration=2.0,
            submit=lambda q, t: arrivals.append(t),
            rng=np.random.default_rng(3),
        )
        client.start()
        engine.run(until=2.5)
        assert len(arrivals) == pytest.approx(1000, rel=0.15)
        assert client.finished

    def test_uniform_arrivals_are_evenly_spaced(self, engine, trace):
        arrivals = []
        client = OpenLoopClient(
            engine, trace, qps=100, duration=1.0,
            submit=lambda q, t: arrivals.append(t),
            rng=np.random.default_rng(3),
            arrival_process="uniform",
        )
        client.start()
        engine.run(until=1.5)
        gaps = np.diff(arrivals)
        assert np.allclose(gaps, 0.01)

    def test_open_loop_ignores_server_speed(self, engine, trace):
        """Arrivals keep coming even if the 'server' never responds."""
        count = [0]
        client = OpenLoopClient(
            engine, trace, qps=200, duration=1.0,
            submit=lambda q, t: count.__setitem__(0, count[0] + 1),
            rng=np.random.default_rng(3),
        )
        client.start()
        engine.run(until=1.2)
        assert count[0] > 150

    def test_invalid_parameters_rejected(self, engine, trace, rng):
        with pytest.raises(TenantError):
            OpenLoopClient(engine, trace, qps=0, duration=1, submit=lambda q, t: None, rng=rng)
        with pytest.raises(TenantError):
            OpenLoopClient(engine, trace, qps=10, duration=0, submit=lambda q, t: None, rng=rng)
        with pytest.raises(TenantError):
            OpenLoopClient(engine, trace, qps=10, duration=1, submit=lambda q, t: None,
                           rng=rng, arrival_process="weird")

    def test_no_arrivals_after_duration(self, engine, trace):
        arrivals = []
        client = OpenLoopClient(
            engine, trace, qps=100, duration=0.5,
            submit=lambda q, t: arrivals.append(t),
            rng=np.random.default_rng(3),
        )
        client.start()
        engine.run(until=5.0)
        assert all(t <= 0.5 for t in arrivals)


class TestVariableRateClient:
    def test_rate_follows_curve(self, engine, trace):
        arrivals = []
        client = VariableRateClient(
            engine, trace,
            rate_fn=lambda t: 1000 if t < 1.0 else 100,
            duration=2.0,
            submit=lambda q, t: arrivals.append(t),
            rng=np.random.default_rng(4),
        )
        client.start()
        engine.run(until=2.5)
        first_half = sum(1 for t in arrivals if t < 1.0)
        second_half = sum(1 for t in arrivals if t >= 1.0)
        assert first_half > 5 * second_half

    def test_minimum_rate_enforced(self, engine, trace):
        client = VariableRateClient(
            engine, trace, rate_fn=lambda t: -50, duration=1.0,
            submit=lambda q, t: None, rng=np.random.default_rng(4), min_rate=10,
        )
        assert client.current_rate(0.0) == 10

    def test_invalid_duration_rejected(self, engine, trace, rng):
        with pytest.raises(TenantError):
            VariableRateClient(engine, trace, rate_fn=lambda t: 10, duration=0,
                               submit=lambda q, t: None, rng=rng)
