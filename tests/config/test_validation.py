"""Tests for cross-field experiment validation."""

import pytest

from repro.config.schema import (
    BlindIsolationSpec,
    ClusterSpec,
    CpuBullySpec,
    ExperimentSpec,
    IndexServeSpec,
    PerfIsoSpec,
    StaticCoreSpec,
    WorkloadSpec,
)
from repro.config.validation import collect_warnings, validate_cluster, validate_experiment
from repro.errors import ConfigError
from repro.units import GIB


class TestValidateExperiment:
    def test_default_spec_is_valid(self):
        validate_experiment(ExperimentSpec())

    def test_primary_memory_must_fit(self):
        spec = ExperimentSpec(
            indexserve=IndexServeSpec(memory_footprint_bytes=200 * GIB)
        )
        with pytest.raises(ConfigError):
            validate_experiment(spec)

    def test_buffer_cannot_cover_whole_machine(self):
        spec = ExperimentSpec(
            perfiso=PerfIsoSpec(cpu_policy="blind", blind=BlindIsolationSpec(buffer_cores=48))
        )
        with pytest.raises(ConfigError):
            validate_experiment(spec)

    def test_static_cores_bounded_by_machine(self):
        spec = ExperimentSpec(
            perfiso=PerfIsoSpec(
                cpu_policy="static_cores", static_cores=StaticCoreSpec(secondary_cores=64)
            )
        )
        with pytest.raises(ConfigError):
            validate_experiment(spec)

    def test_poll_interval_must_fit_in_run(self):
        spec = ExperimentSpec(
            workload=WorkloadSpec(qps=100, duration=0.5),
            perfiso=PerfIsoSpec(poll_interval=2.0),
        )
        with pytest.raises(ConfigError):
            validate_experiment(spec)

    def test_absurd_bully_rejected(self):
        spec = ExperimentSpec(cpu_bully=CpuBullySpec(threads=1000))
        with pytest.raises(ConfigError):
            validate_experiment(spec)

    def test_combined_memory_footprint_checked(self):
        spec = ExperimentSpec(
            indexserve=IndexServeSpec(memory_footprint_bytes=120 * GIB),
            cpu_bully=CpuBullySpec(threads=4, memory_bytes=90 * GIB),
        )
        with pytest.raises(ConfigError):
            validate_experiment(spec)


class TestValidateCluster:
    def test_default_cluster_valid(self):
        validate_cluster(ClusterSpec())

    def test_timeout_must_exceed_network(self):
        with pytest.raises(ConfigError):
            validate_cluster(ClusterSpec(request_timeout=1e-6))


class TestWarnings:
    def test_small_buffer_warns(self):
        spec = ExperimentSpec(
            perfiso=PerfIsoSpec(cpu_policy="blind", blind=BlindIsolationSpec(buffer_cores=2))
        )
        warnings = collect_warnings(spec)
        assert any("buffer_cores" in w for w in warnings)

    def test_short_run_warns(self):
        spec = ExperimentSpec(workload=WorkloadSpec(qps=100, duration=1.0))
        warnings = collect_warnings(spec)
        assert any("duration" in w for w in warnings)

    def test_clean_config_has_no_warnings(self):
        spec = ExperimentSpec(
            workload=WorkloadSpec(qps=2000, duration=10.0),
            perfiso=PerfIsoSpec(cpu_policy="blind", blind=BlindIsolationSpec(buffer_cores=8)),
        )
        assert collect_warnings(spec) == []


class TestArrivalModelValidation:
    def test_flash_crowd_outside_the_window_is_an_error(self):
        from repro.config.schema import FlashCrowdSpec, WorkloadSpec

        workload = WorkloadSpec(
            duration=2.0,
            warmup=0.5,
            flash_crowd=FlashCrowdSpec(start=10.0),
        )
        with pytest.raises(ConfigError, match="flash crowd starts"):
            validate_experiment(ExperimentSpec(workload=workload))

    def test_short_trace_and_long_dwell_warn(self):
        from repro.config.schema import BurstySpec, TraceSpec, WorkloadSpec

        wrapped = ExperimentSpec(
            workload=WorkloadSpec(
                duration=9.0, warmup=1.0, trace=TraceSpec(1.0, (100.0, 200.0))
            )
        )
        assert any("wraps around" in w for w in collect_warnings(wrapped))

        sluggish = ExperimentSpec(
            workload=WorkloadSpec(
                duration=9.0,
                warmup=1.0,
                bursty=BurstySpec(mean_normal_seconds=60.0),
            )
        )
        assert any("never leave the normal state" in w for w in collect_warnings(sluggish))
