"""Tests for the configuration schema."""

import dataclasses

import pytest

from repro.config.schema import (
    BlindIsolationSpec,
    ClusterSpec,
    CpuBullySpec,
    CpuCycleSpec,
    DiskSpec,
    ExperimentSpec,
    HdfsSpec,
    IndexServeSpec,
    IoThrottleSpec,
    MachineSpec,
    MemoryGuardSpec,
    NetworkThrottleSpec,
    NicSpec,
    PerfIsoSpec,
    SchedulerSpec,
    StaticCoreSpec,
    VolumeSpec,
    WorkloadSpec,
)
from repro.errors import ConfigError


class TestMachineSpec:
    def test_default_matches_paper_hardware(self):
        spec = MachineSpec()
        assert spec.logical_cores == 48
        assert spec.physical_cores == 24
        assert spec.memory_bytes == 128 * 1024**3

    def test_invalid_topology_rejected(self):
        with pytest.raises(ConfigError):
            MachineSpec(sockets=0)

    def test_invalid_memory_rejected(self):
        with pytest.raises(ConfigError):
            MachineSpec(memory_bytes=0)

    def test_default_volumes(self):
        spec = MachineSpec()
        assert spec.ssd_volume.disk.kind == "ssd"
        assert spec.hdd_volume.disk.kind == "hdd"
        assert spec.ssd_volume.count == 4
        assert spec.hdd_volume.count == 4


class TestDiskAndVolume:
    def test_invalid_kind_rejected(self):
        with pytest.raises(ConfigError):
            DiskSpec(kind="tape")

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ConfigError):
            DiskSpec(bandwidth_bytes_per_s=0)

    def test_volume_needs_disks(self):
        with pytest.raises(ConfigError):
            VolumeSpec(name="v", disk=DiskSpec(), count=0)

    def test_volume_stripe_floor(self):
        with pytest.raises(ConfigError):
            VolumeSpec(name="v", disk=DiskSpec(), stripe_bytes=1024)

    def test_nic_bandwidth_positive(self):
        with pytest.raises(ConfigError):
            NicSpec(bandwidth_bytes_per_s=0)


class TestSchedulerSpec:
    def test_defaults_valid(self):
        spec = SchedulerSpec()
        assert spec.quantum > 0
        assert spec.placement == "per_core"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"quantum": 0},
            {"context_switch_cost": -1e-6},
            {"rate_interval": 0},
            {"smt_slowdown": 0.01},
            {"placement": "random"},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            SchedulerSpec(**kwargs)


class TestIndexServeSpec:
    def test_defaults_valid(self):
        spec = IndexServeSpec()
        assert spec.workers_per_query_min <= spec.workers_per_query_mean
        assert spec.workers_per_query_mean <= spec.workers_per_query_max

    def test_inconsistent_fanout_rejected(self):
        with pytest.raises(ConfigError):
            IndexServeSpec(workers_per_query_mean=20, workers_per_query_max=10)

    def test_bad_miss_rate_rejected(self):
        with pytest.raises(ConfigError):
            IndexServeSpec(cache_miss_rate=1.5)

    def test_bad_timeout_rejected(self):
        with pytest.raises(ConfigError):
            IndexServeSpec(timeout=0)


class TestTenantSpecs:
    def test_cpu_bully_needs_threads(self):
        with pytest.raises(ConfigError):
            CpuBullySpec(threads=0)

    def test_hdfs_limits_positive(self):
        with pytest.raises(ConfigError):
            HdfsSpec(replication_bandwidth_limit=0)


class TestPerfIsoSpecs:
    def test_policy_must_be_known(self):
        with pytest.raises(ConfigError):
            PerfIsoSpec(cpu_policy="magic")

    def test_blind_buffer_non_negative(self):
        with pytest.raises(ConfigError):
            BlindIsolationSpec(buffer_cores=-1)

    def test_static_core_non_negative(self):
        with pytest.raises(ConfigError):
            StaticCoreSpec(secondary_cores=-1)

    def test_cycle_fraction_range(self):
        with pytest.raises(ConfigError):
            CpuCycleSpec(cpu_fraction=0.0)
        with pytest.raises(ConfigError):
            CpuCycleSpec(cpu_fraction=1.5)

    def test_io_throttle_weight_map(self):
        spec = IoThrottleSpec()
        weights = spec.weight_map()
        assert weights["primary"] > weights["secondary"]

    def test_io_throttle_rejects_bad_weights(self):
        with pytest.raises(ConfigError):
            IoThrottleSpec(weights=(("primary", 0.0),))

    def test_memory_guard_interval(self):
        with pytest.raises(ConfigError):
            MemoryGuardSpec(check_interval=0)

    def test_network_throttle_limit(self):
        with pytest.raises(ConfigError):
            NetworkThrottleSpec(secondary_bandwidth_limit=0)

    def test_poll_interval_positive(self):
        with pytest.raises(ConfigError):
            PerfIsoSpec(poll_interval=0)


class TestWorkloadAndCluster:
    def test_workload_total_time(self):
        spec = WorkloadSpec(qps=100, duration=5, warmup=1)
        assert spec.total_time == 6

    def test_workload_rejects_bad_process(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(arrival_process="bursty")

    def test_cluster_counts(self):
        spec = ClusterSpec()
        assert spec.index_machines == 44
        assert spec.total_machines == 75

    def test_cluster_rejects_zero_rows(self):
        with pytest.raises(ConfigError):
            ClusterSpec(rows=0)


class TestExperimentSpec:
    def test_replace_returns_new_spec(self):
        spec = ExperimentSpec()
        other = spec.replace(seed=99)
        assert other.seed == 99
        assert spec.seed != 99

    def test_is_frozen(self):
        spec = ExperimentSpec()
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.seed = 3  # type: ignore[misc]
