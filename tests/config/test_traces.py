"""Tests for trace-file loading, validation, saving and the CLI."""

import pytest

from repro.config.schema import TraceSpec
from repro.config.traces import (
    dump_trace_text,
    load_trace_file,
    parse_trace_text,
    save_trace_file,
)
from repro.errors import ConfigError
from repro.workloads.__main__ import main as workloads_main

SAMPLE = TraceSpec(
    bucket_seconds=0.5,
    qps=(1612.5, 1650.125, 0.0, 4000.0, 2999.9999999999995),
    source="unit-test",
)


class TestTextRoundTrip:
    def test_jsonl_round_trip_is_exact_including_source(self):
        text = dump_trace_text(SAMPLE, "jsonl")
        loaded = parse_trace_text(text, "jsonl")
        assert loaded == SAMPLE

    def test_csv_round_trip_is_exact_on_buckets(self):
        text = dump_trace_text(SAMPLE, "csv")
        loaded = parse_trace_text(text, "csv")
        assert loaded.bucket_seconds == SAMPLE.bucket_seconds
        assert loaded.qps == SAMPLE.qps
        assert loaded.source == "file"  # CSV carries no provenance

    def test_jsonl_without_header_derives_the_bucket(self):
        text = '{"t": 0.0, "qps": 10.0}\n{"t": 2.0, "qps": 20.0}\n'
        loaded = parse_trace_text(text, "jsonl")
        assert loaded.bucket_seconds == 2.0
        assert loaded.qps == (10.0, 20.0)

    def test_metadata_only_header_is_recognised(self):
        text = (
            '{"format": "perfiso-trace", "version": 1, "source": "prod-w3"}\n'
            '{"t": 0.0, "qps": 10.0}\n{"t": 2.0, "qps": 20.0}\n'
        )
        loaded = parse_trace_text(text, "jsonl")
        assert loaded.bucket_seconds == 2.0
        assert loaded.source == "prod-w3"

    def test_future_version_is_rejected(self):
        text = (
            '{"format": "perfiso-trace", "version": 2, "bucket_seconds": 1.0}\n'
            '{"t": 0.0, "qps": 10.0}\n'
        )
        with pytest.raises(ConfigError, match="version"):
            parse_trace_text(text, "jsonl")

    def test_single_bucket_needs_a_header(self):
        single = TraceSpec(bucket_seconds=3.0, qps=(42.0,))
        assert parse_trace_text(dump_trace_text(single, "jsonl"), "jsonl") == single
        # CSV cannot round-trip a single bucket, so the writer refuses early
        # rather than emitting a file the loader must reject.
        with pytest.raises(ConfigError, match="single-bucket"):
            dump_trace_text(single, "csv")
        with pytest.raises(ConfigError, match="single-bucket"):
            parse_trace_text("t,qps\n0.0,42.0\n", "csv")

    def test_unknown_format_rejected(self):
        with pytest.raises(ConfigError):
            dump_trace_text(SAMPLE, "yaml")
        with pytest.raises(ConfigError):
            parse_trace_text("", "yaml")


class TestValidator:
    def test_timestamps_must_start_at_zero(self):
        with pytest.raises(ConfigError, match="start at 0"):
            parse_trace_text('{"t": 1.0, "qps": 5.0}\n{"t": 2.0, "qps": 5.0}', "jsonl")

    def test_timestamps_must_increase(self):
        text = "t,qps\n0.0,1.0\n2.0,1.0\n1.0,1.0\n"
        with pytest.raises(ConfigError, match="strictly increasing"):
            parse_trace_text(text, "csv")

    def test_timestamps_must_be_uniform(self):
        text = "t,qps\n0.0,1.0\n1.0,1.0\n3.0,1.0\n"
        with pytest.raises(ConfigError, match="uniformly spaced"):
            parse_trace_text(text, "csv")

    def test_header_bucket_must_match_spacing(self):
        text = (
            '{"bucket_seconds": 5.0}\n'
            '{"t": 0.0, "qps": 1.0}\n{"t": 1.0, "qps": 1.0}'
        )
        with pytest.raises(ConfigError, match="disagrees"):
            parse_trace_text(text, "jsonl")

    def test_negative_qps_rejected(self):
        text = "t,qps\n0.0,5.0\n1.0,-5.0\n"
        with pytest.raises(ConfigError, match="invalid QPS"):
            parse_trace_text(text, "csv")

    def test_malformed_rows_rejected(self):
        with pytest.raises(ConfigError, match="valid JSON"):
            parse_trace_text("not json", "jsonl")
        with pytest.raises(ConfigError, match="'t' and 'qps'"):
            parse_trace_text('{"time": 0.0}', "jsonl")
        with pytest.raises(ConfigError, match="header row"):
            parse_trace_text("0.0,1.0\n", "csv")
        with pytest.raises(ConfigError, match="two columns"):
            parse_trace_text("t,qps\n0.0,1.0,9\n", "csv")
        with pytest.raises(ConfigError, match="no data rows"):
            parse_trace_text("", "jsonl")


class TestFiles:
    def test_save_and_load_infer_format_from_suffix(self, tmp_path):
        jsonl = save_trace_file(SAMPLE, tmp_path / "trace.jsonl")
        csv = save_trace_file(SAMPLE, tmp_path / "trace.csv")
        assert load_trace_file(jsonl) == SAMPLE
        assert load_trace_file(csv).qps == SAMPLE.qps

    def test_source_override(self, tmp_path):
        path = save_trace_file(SAMPLE, tmp_path / "trace.jsonl")
        assert load_trace_file(path, source="prod-w3").source == "prod-w3"

    def test_unknown_suffix_needs_explicit_format(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot infer"):
            save_trace_file(SAMPLE, tmp_path / "trace.dat")
        save_trace_file(SAMPLE, tmp_path / "trace.dat", fmt="jsonl")
        assert load_trace_file(tmp_path / "trace.dat", fmt="jsonl") == SAMPLE

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="not found"):
            load_trace_file(tmp_path / "nope.jsonl")


class TestWorkloadsCli:
    def test_synthesize_then_validate(self, tmp_path, capsys):
        out = tmp_path / "diurnal.jsonl"
        assert workloads_main(
            [
                "--synthesize", "diurnal",
                "--peak-qps", "900", "--trough-qps", "300",
                "--duration", "30", "--bucket-seconds", "5",
                "--out", str(out),
            ]
        ) == 0
        assert workloads_main(["--validate", str(out)]) == 0
        summary = capsys.readouterr().out
        assert "6 buckets x 5 s" in summary
        assert "synthetic:diurnal" in summary

    def test_synthesis_is_deterministic_per_seed(self, tmp_path):
        args = [
            "--synthesize", "bursty", "--seed", "7",
            "--duration", "20", "--bucket-seconds", "1",
        ]
        first, second = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        assert workloads_main(args + ["--out", str(first)]) == 0
        assert workloads_main(args + ["--out", str(second)]) == 0
        assert first.read_text() == second.read_text()
        assert load_trace_file(first) == load_trace_file(second)

    def test_flash_crowd_csv(self, tmp_path):
        out = tmp_path / "flash.csv"
        assert workloads_main(
            ["--synthesize", "flash-crowd", "--duration", "12", "--out", str(out)]
        ) == 0
        assert load_trace_file(out).peak_qps == 6000.0

    def test_validate_rejects_a_broken_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.csv"
        bad.write_text("t,qps\n0.0,1.0\n5.0,-1.0\n")
        assert workloads_main(["--validate", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "level=error" in err and "command failed" in err

    def test_synthesize_requires_out(self, capsys):
        with pytest.raises(SystemExit):
            workloads_main(["--synthesize", "diurnal"])
