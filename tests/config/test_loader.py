"""Tests for JSON configuration round-tripping."""

import pytest

from repro.config import loader
from repro.config.schema import (
    BlindIsolationSpec,
    CpuBullySpec,
    ExperimentSpec,
    IoThrottleSpec,
    MachineSpec,
    PerfIsoSpec,
    WorkloadSpec,
)
from repro.errors import ConfigError


class TestRoundTrip:
    def test_machine_spec_round_trip(self):
        spec = MachineSpec(sockets=1, cores_per_socket=8)
        rebuilt = loader.load_json(MachineSpec, loader.dump_json(spec))
        assert rebuilt == spec

    def test_perfiso_spec_round_trip(self):
        spec = PerfIsoSpec(
            cpu_policy="blind",
            blind=BlindIsolationSpec(buffer_cores=6),
            io_throttle=IoThrottleSpec(secondary_iops_limit=20.0),
        )
        rebuilt = loader.load_json(PerfIsoSpec, loader.dump_json(spec))
        assert rebuilt == spec

    def test_experiment_spec_round_trip_with_optionals(self):
        spec = ExperimentSpec(
            workload=WorkloadSpec(qps=1234.0, duration=3.0),
            cpu_bully=CpuBullySpec(threads=12),
            perfiso=PerfIsoSpec(),
        )
        rebuilt = loader.load_json(ExperimentSpec, loader.dump_json(spec))
        assert rebuilt == spec

    def test_none_optionals_preserved(self):
        spec = ExperimentSpec()
        rebuilt = loader.load_json(ExperimentSpec, loader.dump_json(spec))
        assert rebuilt.cpu_bully is None
        assert rebuilt.perfiso is None

    def test_file_round_trip(self, tmp_path):
        spec = PerfIsoSpec()
        path = loader.save_file(spec, tmp_path / "configs" / "perfiso.json")
        assert path.exists()
        assert loader.load_file(PerfIsoSpec, path) == spec


class TestErrors:
    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError):
            loader.from_dict(MachineSpec, {"socketz": 2})

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigError):
            loader.load_json(MachineSpec, "{not json")

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            loader.load_file(MachineSpec, tmp_path / "nope.json")

    def test_from_dict_requires_dataclass(self):
        with pytest.raises(ConfigError):
            loader.from_dict(dict, {"a": 1})  # type: ignore[arg-type]

    def test_to_dict_requires_dataclass_instance(self):
        with pytest.raises(ConfigError):
            loader.to_dict({"a": 1})

    def test_from_none_rejected(self):
        with pytest.raises(ConfigError):
            loader.from_dict(MachineSpec, None)
