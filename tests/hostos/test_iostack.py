"""Tests for the kernel I/O stack and its token-bucket throttling."""

import pytest

from repro.errors import ResourceError
from repro.hostos.process import TenantCategory
from repro.units import MB


@pytest.fixture
def process(kernel):
    return kernel.create_process("batch", TenantCategory.SECONDARY)


class TestSubmission:
    def test_unlimited_request_completes(self, engine, kernel, process):
        done = []
        kernel.iostack.submit(process, "hdd", "write", 64 * 1024, callback=lambda r: done.append(r))
        engine.run()
        assert len(done) == 1
        assert kernel.iostack.completions("batch", "hdd") == 1
        assert process.io_bytes_completed == 64 * 1024

    def test_process_per_volume_accounting(self, engine, kernel, process):
        kernel.iostack.submit(process, "hdd", "write", 1024)
        kernel.iostack.submit(process, "ssd", "read", 2048)
        engine.run()
        assert process.io_requests_by_volume == {"hdd": 1, "ssd": 1}
        assert kernel.iostack.completed_bytes("batch", "ssd") == 2048

    def test_os_overhead_charged_per_request(self, engine, kernel, process):
        before = kernel.accounting.busy_seconds(TenantCategory.SYSTEM)
        kernel.iostack.submit(process, "hdd", "write", 1024)
        engine.run()
        assert kernel.accounting.busy_seconds(TenantCategory.SYSTEM) > before


class TestThrottling:
    def test_bandwidth_limit_paces_throughput(self, engine, kernel, process):
        kernel.iostack.set_bandwidth_limit("batch", "hdd", 1 * MB)
        completed = []
        chunk = 256 * 1024
        for _ in range(8):  # 2 MB total at 1 MB/s => ~2 s
            kernel.iostack.submit(process, "hdd", "write", chunk,
                                  callback=lambda r: completed.append(engine.now))
        engine.run()
        assert len(completed) == 8
        assert completed[-1] > 1.5

    def test_unthrottled_is_much_faster(self, engine, kernel, process):
        completed = []
        for _ in range(8):
            kernel.iostack.submit(process, "hdd", "write", 256 * 1024,
                                  callback=lambda r: completed.append(engine.now))
        engine.run()
        assert completed[-1] < 0.5

    def test_iops_limit_paces_request_rate(self, engine, kernel, process):
        kernel.iostack.set_iops_limit("batch", "hdd", 10.0)
        completed = []
        for _ in range(10):
            kernel.iostack.submit(process, "hdd", "write", 4096,
                                  callback=lambda r: completed.append(engine.now))
        engine.run()
        # 10 requests at 10 IOPS takes on the order of a second (burst allowance aside).
        assert completed[-1] > 0.5

    def test_limits_can_be_removed(self, engine, kernel, process):
        kernel.iostack.set_bandwidth_limit("batch", "hdd", 1 * MB)
        kernel.iostack.set_bandwidth_limit("batch", "hdd", None)
        assert kernel.iostack.get_limits("batch", "hdd") == (None, None)
        completed = []
        kernel.iostack.submit(process, "hdd", "write", 1024 * 1024,
                              callback=lambda r: completed.append(engine.now))
        engine.run()
        assert completed and completed[0] < 0.5

    def test_limits_are_per_process(self, engine, kernel, process):
        other = kernel.create_process("other", TenantCategory.SECONDARY)
        kernel.iostack.set_bandwidth_limit("batch", "hdd", 1 * MB)
        times = {"batch": [], "other": []}
        for _ in range(3):
            kernel.iostack.submit(process, "hdd", "write", 1 * MB,
                                  callback=lambda r: times["batch"].append(engine.now))
            kernel.iostack.submit(other, "hdd", "write", 1 * MB,
                                  callback=lambda r: times["other"].append(engine.now))
        engine.run()
        assert max(times["other"]) < max(times["batch"])

    def test_invalid_limits_rejected(self, kernel):
        with pytest.raises(ResourceError):
            kernel.iostack.set_bandwidth_limit("batch", "hdd", 0)
        with pytest.raises(ResourceError):
            kernel.iostack.set_iops_limit("batch", "hdd", -1)

    def test_throttle_delay_counter(self, engine, kernel, process):
        kernel.iostack.set_bandwidth_limit("batch", "hdd", 1 * MB)
        for _ in range(4):
            kernel.iostack.submit(process, "hdd", "write", 1 * MB)
        engine.run()
        assert kernel.iostack.throttle_delays > 0
