"""Tests for the thread model."""

import math

import pytest

from repro.errors import SchedulerError
from repro.hostos.process import OsProcess, TenantCategory
from repro.hostos.thread import SimThread, ThreadState, cpu_phase, io_phase


def make_process(category=TenantCategory.PRIMARY):
    return OsProcess(pid=1, name="svc", category=category, created_at=0.0)


def make_thread(program, process=None, affinity=None):
    return SimThread(
        tid=1,
        name="t",
        process=process or make_process(),
        program=program,
        created_at=0.0,
        affinity=affinity,
    )


class TestPhases:
    def test_cpu_phase_validation(self):
        assert cpu_phase(0.001) == ("cpu", 0.001)
        with pytest.raises(SchedulerError):
            cpu_phase(-1.0)

    def test_io_phase_validation(self):
        assert io_phase("ssd", "read", 4096) == ("io", "ssd", "read", 4096)
        with pytest.raises(SchedulerError):
            io_phase("ssd", "peek", 4096)
        with pytest.raises(SchedulerError):
            io_phase("ssd", "read", 0)


class TestSimThread:
    def test_empty_program_rejected(self):
        with pytest.raises(SchedulerError):
            make_thread([])

    def test_initial_state(self):
        thread = make_thread([cpu_phase(0.001)])
        assert thread.state == ThreadState.NEW
        assert thread.is_cpu_phase
        assert thread.remaining_in_phase == pytest.approx(0.001)

    def test_infinite_phase(self):
        thread = make_thread([cpu_phase(math.inf)])
        assert thread.is_runnable_forever

    def test_advance_phase(self):
        thread = make_thread([cpu_phase(0.001), io_phase("ssd", "read", 1024), cpu_phase(0.002)])
        assert thread.advance_phase()
        assert thread.is_io_phase
        assert thread.advance_phase()
        assert thread.remaining_in_phase == pytest.approx(0.002)
        assert not thread.advance_phase()

    def test_extend_program(self):
        thread = make_thread([cpu_phase(0.001)])
        thread.extend_program([cpu_phase(0.002)])
        assert len(thread.program) == 2

    def test_extend_terminated_rejected(self):
        thread = make_thread([cpu_phase(0.001)])
        thread.state = ThreadState.TERMINATED
        with pytest.raises(SchedulerError):
            thread.extend_program([cpu_phase(0.001)])

    def test_category_comes_from_process(self):
        thread = make_thread([cpu_phase(1)], process=make_process(TenantCategory.SECONDARY))
        assert thread.category == TenantCategory.SECONDARY


class TestAffinity:
    def test_no_affinity_runs_anywhere(self):
        thread = make_thread([cpu_phase(1)])
        assert thread.effective_affinity() is None
        assert thread.can_run_on(0)
        assert thread.can_run_on(47)

    def test_thread_affinity_respected(self):
        thread = make_thread([cpu_phase(1)], affinity=frozenset({1, 2}))
        assert thread.can_run_on(1)
        assert not thread.can_run_on(0)

    def test_job_affinity_intersects_thread_affinity(self):
        from repro.hostos.jobobject import JobObject

        process = make_process(TenantCategory.SECONDARY)
        job = JobObject("secondary")
        job.assign(process)
        job.set_cpu_affinity(frozenset({2, 3}))
        thread = make_thread([cpu_phase(1)], process=process, affinity=frozenset({1, 2}))
        assert thread.effective_affinity() == frozenset({2})

    def test_job_affinity_alone(self):
        from repro.hostos.jobobject import JobObject

        process = make_process(TenantCategory.SECONDARY)
        job = JobObject("secondary")
        job.assign(process)
        job.set_cpu_affinity(frozenset({0}))
        thread = make_thread([cpu_phase(1)], process=process)
        assert thread.effective_affinity() == frozenset({0})
