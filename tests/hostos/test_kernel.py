"""Tests for the kernel facade."""

import math

import pytest

from repro.errors import SchedulerError
from repro.hostos.process import TenantCategory
from repro.hostos.thread import cpu_phase
from repro.units import GIB, millis


class TestProcesses:
    def test_create_process_allocates_memory(self, kernel):
        process = kernel.create_process("svc", TenantCategory.PRIMARY, memory_bytes=1 * GIB)
        assert process.memory_bytes == 1 * GIB
        assert kernel.machine.memory.usage_of("svc") == 1 * GIB

    def test_find_processes_by_category(self, kernel):
        kernel.create_process("svc", TenantCategory.PRIMARY)
        kernel.create_process("batch", TenantCategory.SECONDARY)
        assert [p.name for p in kernel.find_processes(TenantCategory.PRIMARY)] == ["svc"]
        assert len(kernel.find_processes()) == 2

    def test_kill_process_releases_memory_and_threads(self, engine, kernel):
        process = kernel.create_process("batch", TenantCategory.SECONDARY, memory_bytes=1 * GIB)
        thread = kernel.spawn_thread(process, [cpu_phase(math.inf)])
        engine.run(until=millis(5))
        kernel.kill_process(process)
        assert thread.terminated
        assert kernel.machine.memory.usage_of("batch") == 0
        assert not process.alive

    def test_spawn_thread_in_dead_process_rejected(self, kernel):
        process = kernel.create_process("batch", TenantCategory.SECONDARY)
        kernel.kill_process(process)
        with pytest.raises(SchedulerError):
            kernel.spawn_thread(process, [cpu_phase(1)])

    def test_memory_allocation_helpers(self, kernel):
        process = kernel.create_process("svc", TenantCategory.PRIMARY)
        free_before = kernel.free_memory_bytes()
        kernel.allocate_memory(process, 1 * GIB)
        assert kernel.free_memory_bytes() == free_before - 1 * GIB
        kernel.free_memory(process, 1 * GIB)
        assert kernel.free_memory_bytes() == free_before


class TestJobObjects:
    def test_create_and_lookup(self, kernel):
        job = kernel.create_job_object("secondary")
        assert kernel.job_object("secondary") is job
        assert job in kernel.job_objects()

    def test_duplicate_name_rejected(self, kernel):
        kernel.create_job_object("secondary")
        with pytest.raises(SchedulerError):
            kernel.create_job_object("secondary")

    def test_unknown_name_rejected(self, kernel):
        with pytest.raises(SchedulerError):
            kernel.job_object("missing")

    def test_job_changes_reach_scheduler(self, engine, kernel):
        job = kernel.create_job_object("secondary")
        process = kernel.create_process("batch", TenantCategory.SECONDARY)
        job.assign(process)
        for _ in range(4):
            kernel.spawn_thread(process, [cpu_phase(math.inf)])
        engine.run(until=millis(2))
        job.set_cpu_affinity(frozenset({0}))
        assert kernel.scheduler.cores_used_by_category(TenantCategory.SECONDARY) == 1


class TestSyscalls:
    def test_cpu_utilization_reports_idle_machine(self, engine, kernel):
        engine.run(until=1.0)
        utilization = kernel.cpu_utilization()
        assert utilization["idle"] == pytest.approx(1.0)

    def test_cpu_snapshot_differencing(self, engine, kernel):
        process = kernel.create_process("svc", TenantCategory.PRIMARY)
        snapshot = kernel.cpu_snapshot()
        kernel.spawn_thread(process, [cpu_phase(millis(8))])
        engine.run(until=1.0)
        utilization = kernel.cpu_utilization(snapshot)
        assert utilization[TenantCategory.PRIMARY] > 0

    def test_async_io_submission(self, engine, kernel):
        process = kernel.create_process("svc", TenantCategory.PRIMARY)
        done = []
        kernel.submit_io(process, "hdd", "write", 4096, callback=lambda r: done.append(r))
        engine.run()
        assert len(done) == 1
