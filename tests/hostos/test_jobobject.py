"""Tests for job objects."""

import pytest

from repro.errors import SchedulerError
from repro.hostos.jobobject import JobObject
from repro.hostos.process import OsProcess, TenantCategory


def make_process(name="batch"):
    return OsProcess(pid=1, name=name, category=TenantCategory.SECONDARY, created_at=0.0)


class TestMembership:
    def test_assign_sets_backlink(self):
        job = JobObject("secondary")
        process = make_process()
        job.assign(process)
        assert process.job is job
        assert process in job.processes

    def test_double_assign_same_job_ok(self):
        job = JobObject("secondary")
        process = make_process()
        job.assign(process)
        job.assign(process)
        assert job.processes.count(process) == 1

    def test_assign_to_second_job_rejected(self):
        process = make_process()
        JobObject("a").assign(process)
        with pytest.raises(SchedulerError):
            JobObject("b").assign(process)

    def test_remove(self):
        job = JobObject("secondary")
        process = make_process()
        job.assign(process)
        job.remove(process)
        assert process.job is None
        assert process not in job.processes


class TestKnobs:
    def test_affinity_notifies_listeners(self):
        job = JobObject("secondary")
        calls = []
        job.add_listener(lambda j: calls.append(j.cpu_affinity))
        job.set_cpu_affinity(frozenset({1, 2}))
        assert calls == [frozenset({1, 2})]

    def test_unchanged_affinity_does_not_notify(self):
        job = JobObject("secondary")
        calls = []
        job.set_cpu_affinity(frozenset({1}))
        job.add_listener(lambda j: calls.append(True))
        job.set_cpu_affinity(frozenset({1}))
        assert calls == []

    def test_empty_affinity_allowed(self):
        job = JobObject("secondary")
        job.set_cpu_affinity(frozenset())
        assert job.cpu_affinity == frozenset()

    def test_cpu_rate_validation(self):
        job = JobObject("secondary")
        with pytest.raises(SchedulerError):
            job.set_cpu_rate(0.0)
        with pytest.raises(SchedulerError):
            job.set_cpu_rate(1.5)
        job.set_cpu_rate(0.25)
        assert job.cpu_rate_fraction == 0.25

    def test_clearing_rate_unthrottles(self):
        job = JobObject("secondary")
        job.set_cpu_rate(0.1)
        job.throttled = True
        job.set_cpu_rate(None)
        assert not job.throttled

    def test_memory_limit(self):
        job = JobObject("secondary")
        process = make_process()
        process.memory_bytes = 100
        job.assign(process)
        job.set_memory_limit(50)
        assert job.exceeds_memory_limit()
        job.set_memory_limit(200)
        assert not job.exceeds_memory_limit()
        with pytest.raises(SchedulerError):
            job.set_memory_limit(0)

    def test_memory_usage_sums_processes(self):
        job = JobObject("secondary")
        for index in range(3):
            process = make_process(f"p{index}")
            process.memory_bytes = 10
            job.assign(process)
        assert job.memory_usage_bytes == 30

    def test_live_threads_empty_without_threads(self):
        job = JobObject("secondary")
        job.assign(make_process())
        assert job.live_threads() == []
