"""Tests for CPU accounting."""

import pytest

from repro.errors import SchedulerError
from repro.hostos.accounting import CpuAccounting
from repro.hostos.process import TenantCategory


class TestCpuAccounting:
    def test_charge_and_query(self):
        accounting = CpuAccounting(4)
        accounting.charge(TenantCategory.PRIMARY, 2.0, "indexserve")
        accounting.charge(TenantCategory.SECONDARY, 1.0, "bully")
        assert accounting.busy_seconds(TenantCategory.PRIMARY) == 2.0
        assert accounting.process_seconds("indexserve") == 2.0

    def test_negative_charge_rejected(self):
        with pytest.raises(SchedulerError):
            CpuAccounting(4).charge(TenantCategory.PRIMARY, -1.0)

    def test_zero_cores_rejected(self):
        with pytest.raises(SchedulerError):
            CpuAccounting(0)

    def test_utilization_fractions(self):
        accounting = CpuAccounting(4)
        accounting.charge(TenantCategory.PRIMARY, 2.0)
        accounting.charge_os(1.0)
        # 10 seconds on 4 cores = 40 core-seconds of capacity.
        utilization = accounting.utilization(10.0)
        assert utilization[TenantCategory.PRIMARY] == pytest.approx(0.05)
        assert utilization[TenantCategory.SYSTEM] == pytest.approx(0.025)
        assert utilization["idle"] == pytest.approx(0.925)

    def test_utilization_sums_to_one(self):
        accounting = CpuAccounting(8)
        accounting.charge(TenantCategory.PRIMARY, 5.0)
        accounting.charge(TenantCategory.SECONDARY, 10.0)
        utilization = accounting.utilization(10.0)
        assert sum(utilization.values()) == pytest.approx(1.0)

    def test_utilization_since_snapshot(self):
        accounting = CpuAccounting(2)
        accounting.charge(TenantCategory.PRIMARY, 1.0)
        snapshot = accounting.snapshot(5.0)
        accounting.charge(TenantCategory.PRIMARY, 1.0)
        utilization = accounting.utilization(10.0, snapshot)
        # Only the second charge counts, over 5 seconds on 2 cores.
        assert utilization[TenantCategory.PRIMARY] == pytest.approx(0.1)

    def test_utilization_with_zero_elapsed(self):
        accounting = CpuAccounting(2)
        utilization = accounting.utilization(0.0)
        assert utilization["idle"] == 1.0

    def test_snapshot_is_immutable_copy(self):
        accounting = CpuAccounting(2)
        accounting.charge(TenantCategory.PRIMARY, 1.0)
        snapshot = accounting.snapshot(1.0)
        accounting.charge(TenantCategory.PRIMARY, 5.0)
        assert snapshot.busy_by_category[TenantCategory.PRIMARY] == 1.0
        assert snapshot.total_busy() == 1.0
