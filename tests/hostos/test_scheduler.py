"""Tests for the multicore scheduler — the core substrate of the reproduction."""

import math

import pytest

from repro.config.schema import MachineSpec, SchedulerSpec
from repro.hardware.machine import Machine
from repro.hostos.process import TenantCategory
from repro.hostos.syscalls import Kernel
from repro.hostos.thread import ThreadState, cpu_phase, io_phase
from repro.units import millis


def make_kernel(engine, cores=4, threads_per_core=1, **scheduler_kwargs):
    spec = MachineSpec(sockets=1, cores_per_socket=cores, threads_per_core=threads_per_core)
    machine = Machine(engine, spec, name="sched-test")
    return Kernel(engine, machine, SchedulerSpec(**scheduler_kwargs))


class TestBasicExecution:
    def test_single_thread_runs_to_completion(self, engine):
        kernel = make_kernel(engine)
        process = kernel.create_process("svc", TenantCategory.PRIMARY)
        finished = []
        kernel.spawn_thread(process, [cpu_phase(millis(5))], on_complete=lambda t: finished.append(engine.now))
        engine.run()
        assert finished == [pytest.approx(millis(5))]
        assert process.cpu_time == pytest.approx(millis(5))

    def test_threads_run_in_parallel_on_idle_cores(self, engine):
        kernel = make_kernel(engine, cores=4)
        process = kernel.create_process("svc", TenantCategory.PRIMARY)
        finished = []
        for _ in range(4):
            kernel.spawn_thread(process, [cpu_phase(millis(10))], on_complete=lambda t: finished.append(engine.now))
        engine.run()
        assert len(finished) == 4
        assert max(finished) == pytest.approx(millis(10))

    def test_more_threads_than_cores_queue(self, engine):
        kernel = make_kernel(engine, cores=2, quantum=millis(100))
        process = kernel.create_process("svc", TenantCategory.PRIMARY)
        finished = []
        for _ in range(4):
            kernel.spawn_thread(process, [cpu_phase(millis(10))], on_complete=lambda t: finished.append(engine.now))
        engine.run()
        # Two waves of two threads each.
        assert max(finished) == pytest.approx(millis(20))

    def test_idle_core_accounting(self, engine):
        kernel = make_kernel(engine, cores=4)
        process = kernel.create_process("svc", TenantCategory.PRIMARY)
        assert kernel.idle_core_count() == 4
        kernel.spawn_thread(process, [cpu_phase(millis(5))])
        assert kernel.idle_core_count() == 3
        engine.run()
        assert kernel.idle_core_count() == 4

    def test_idle_core_mask_matches_ids(self, engine):
        kernel = make_kernel(engine, cores=4)
        process = kernel.create_process("svc", TenantCategory.PRIMARY)
        kernel.spawn_thread(process, [cpu_phase(millis(5))])
        mask = kernel.get_idle_core_mask()
        ids = kernel.get_idle_core_ids()
        assert bin(mask).count("1") == len(ids) == 3

    def test_cpu_time_charged_to_category(self, engine):
        kernel = make_kernel(engine, cores=2)
        primary = kernel.create_process("svc", TenantCategory.PRIMARY)
        secondary = kernel.create_process("batch", TenantCategory.SECONDARY)
        kernel.spawn_thread(primary, [cpu_phase(millis(4))])
        kernel.spawn_thread(secondary, [cpu_phase(millis(6))])
        engine.run()
        assert kernel.accounting.busy_seconds(TenantCategory.PRIMARY) == pytest.approx(millis(4))
        assert kernel.accounting.busy_seconds(TenantCategory.SECONDARY) == pytest.approx(millis(6))


class TestQuantumAndFairness:
    def test_infinite_thread_never_terminates(self, engine):
        kernel = make_kernel(engine, cores=1, quantum=millis(10))
        process = kernel.create_process("batch", TenantCategory.SECONDARY)
        thread = kernel.spawn_thread(process, [cpu_phase(math.inf)])
        engine.run(until=0.1)
        assert not thread.terminated
        assert process.cpu_time == pytest.approx(0.1, rel=0.2)

    def test_round_robin_shares_one_core(self, engine):
        kernel = make_kernel(engine, cores=1, quantum=millis(10))
        process = kernel.create_process("batch", TenantCategory.SECONDARY)
        a = kernel.spawn_thread(process, [cpu_phase(math.inf)], name="a")
        b = kernel.spawn_thread(process, [cpu_phase(math.inf)], name="b")
        engine.run(until=0.2)
        assert a.total_cpu_time == pytest.approx(b.total_cpu_time, rel=0.2)

    def test_waiting_thread_delayed_by_running_quantum(self, engine):
        """A newly-ready thread waits for the current quantum when all cores
        are busy — the mechanism behind Figure 4's tail blow-up."""
        kernel = make_kernel(engine, cores=1, quantum=millis(50))
        bully = kernel.create_process("batch", TenantCategory.SECONDARY)
        kernel.spawn_thread(bully, [cpu_phase(math.inf)])
        primary = kernel.create_process("svc", TenantCategory.PRIMARY)
        finished = []
        # Arrives 5 ms into the bully's 50 ms quantum.
        engine.schedule(millis(5), lambda: kernel.spawn_thread(
            primary, [cpu_phase(millis(1))], on_complete=lambda t: finished.append(engine.now)))
        engine.run(until=0.2)
        assert finished, "primary thread never ran"
        # It had to wait until the quantum boundary at t=50ms.
        assert finished[0] >= millis(50)

    def test_work_conserving_when_core_idle(self, engine):
        kernel = make_kernel(engine, cores=2, quantum=millis(50))
        process = kernel.create_process("svc", TenantCategory.PRIMARY)
        finished = []
        kernel.spawn_thread(process, [cpu_phase(millis(1))], on_complete=lambda t: finished.append(engine.now))
        engine.run()
        # With idle cores available there is no queueing delay.
        assert finished[0] == pytest.approx(millis(1))


class TestAffinity:
    def test_job_affinity_restricts_cores(self, engine):
        kernel = make_kernel(engine, cores=4, quantum=millis(10))
        job = kernel.create_job_object("secondary")
        job.set_cpu_affinity(frozenset({0, 1}))
        process = kernel.create_process("batch", TenantCategory.SECONDARY)
        job.assign(process)
        for _ in range(4):
            kernel.spawn_thread(process, [cpu_phase(math.inf)])
        engine.run(until=0.05)
        assert kernel.scheduler.cores_used_by_category(TenantCategory.SECONDARY) == 2
        assert kernel.idle_core_count() == 2

    def test_shrinking_affinity_preempts_immediately(self, engine):
        kernel = make_kernel(engine, cores=4, quantum=millis(100))
        job = kernel.create_job_object("secondary")
        process = kernel.create_process("batch", TenantCategory.SECONDARY)
        job.assign(process)
        for _ in range(4):
            kernel.spawn_thread(process, [cpu_phase(math.inf)])
        engine.run(until=millis(5))
        assert kernel.idle_core_count() == 0
        job.set_cpu_affinity(frozenset({0}))
        assert kernel.scheduler.cores_used_by_category(TenantCategory.SECONDARY) == 1
        assert kernel.idle_core_count() == 3

    def test_growing_affinity_reclaims_cores(self, engine):
        kernel = make_kernel(engine, cores=4, quantum=millis(20))
        job = kernel.create_job_object("secondary")
        job.set_cpu_affinity(frozenset({0}))
        process = kernel.create_process("batch", TenantCategory.SECONDARY)
        job.assign(process)
        for _ in range(4):
            kernel.spawn_thread(process, [cpu_phase(math.inf)])
        engine.run(until=millis(5))
        assert kernel.scheduler.cores_used_by_category(TenantCategory.SECONDARY) == 1
        job.set_cpu_affinity(frozenset({0, 1, 2, 3}))
        engine.run(until=millis(10))
        assert kernel.scheduler.cores_used_by_category(TenantCategory.SECONDARY) == 4

    def test_empty_affinity_parks_all_threads(self, engine):
        kernel = make_kernel(engine, cores=2, quantum=millis(10))
        job = kernel.create_job_object("secondary")
        process = kernel.create_process("batch", TenantCategory.SECONDARY)
        job.assign(process)
        kernel.spawn_thread(process, [cpu_phase(math.inf)])
        engine.run(until=millis(5))
        job.set_cpu_affinity(frozenset())
        cpu_before = process.cpu_time
        engine.run(until=millis(50))
        assert process.cpu_time == pytest.approx(cpu_before)
        assert kernel.idle_core_count() == 2

    def test_unrestricted_primary_can_use_any_core(self, engine):
        kernel = make_kernel(engine, cores=2, quantum=millis(10))
        job = kernel.create_job_object("secondary")
        job.set_cpu_affinity(frozenset({0}))
        batch = kernel.create_process("batch", TenantCategory.SECONDARY)
        job.assign(batch)
        kernel.spawn_thread(batch, [cpu_phase(math.inf)])
        primary = kernel.create_process("svc", TenantCategory.PRIMARY)
        finished = []
        kernel.spawn_thread(primary, [cpu_phase(millis(1))], on_complete=lambda t: finished.append(engine.now))
        engine.run(until=millis(20))
        assert finished[0] == pytest.approx(millis(1))


class TestRateControl:
    def test_rate_limit_bounds_cpu_share(self, engine):
        kernel = make_kernel(engine, cores=4, quantum=millis(10), rate_interval=millis(50))
        job = kernel.create_job_object("secondary")
        process = kernel.create_process("batch", TenantCategory.SECONDARY)
        job.assign(process)
        for _ in range(4):
            kernel.spawn_thread(process, [cpu_phase(math.inf)])
        job.set_cpu_rate(0.25)
        engine.run(until=1.0)
        share = process.cpu_time / (1.0 * 4)
        assert share == pytest.approx(0.25, rel=0.3)

    def test_rate_limited_job_throttles_and_recovers(self, engine):
        kernel = make_kernel(engine, cores=2, quantum=millis(10), rate_interval=millis(100))
        job = kernel.create_job_object("secondary")
        process = kernel.create_process("batch", TenantCategory.SECONDARY)
        job.assign(process)
        kernel.spawn_thread(process, [cpu_phase(math.inf)])
        kernel.spawn_thread(process, [cpu_phase(math.inf)])
        job.set_cpu_rate(0.1)
        engine.run(until=millis(60))
        assert job.throttled
        engine.run(until=millis(110))
        # After the interval refresh the job runs again.
        assert not job.throttled or process.cpu_time > 0

    def test_removing_rate_limit_restores_full_speed(self, engine):
        kernel = make_kernel(engine, cores=1, quantum=millis(10), rate_interval=millis(50))
        job = kernel.create_job_object("secondary")
        process = kernel.create_process("batch", TenantCategory.SECONDARY)
        job.assign(process)
        kernel.spawn_thread(process, [cpu_phase(math.inf)])
        job.set_cpu_rate(0.1)
        engine.run(until=0.5)
        throttled_time = process.cpu_time
        job.set_cpu_rate(None)
        engine.run(until=1.0)
        unthrottled_delta = process.cpu_time - throttled_time
        assert unthrottled_delta > throttled_time * 2


class TestIoPhases:
    def test_io_phase_blocks_then_resumes(self, engine):
        kernel = make_kernel(engine, cores=2)
        process = kernel.create_process("svc", TenantCategory.PRIMARY)
        finished = []
        kernel.spawn_thread(
            process,
            [cpu_phase(millis(1)), io_phase("ssd", "read", 64 * 1024), cpu_phase(millis(1))],
            on_complete=lambda t: finished.append(engine.now),
        )
        engine.run()
        assert len(finished) == 1
        # Total time exceeds pure CPU time because of the blocking read.
        assert finished[0] > millis(2)
        assert process.io_requests_completed == 1

    def test_program_starting_with_io(self, engine):
        kernel = make_kernel(engine, cores=1)
        process = kernel.create_process("svc", TenantCategory.PRIMARY)
        finished = []
        kernel.spawn_thread(
            process,
            [io_phase("ssd", "read", 4096), cpu_phase(millis(1))],
            on_complete=lambda t: finished.append(engine.now),
        )
        engine.run()
        assert len(finished) == 1

    def test_blocked_thread_frees_core(self, engine):
        kernel = make_kernel(engine, cores=1)
        process = kernel.create_process("svc", TenantCategory.PRIMARY)
        order = []
        kernel.spawn_thread(
            process,
            [cpu_phase(millis(1)), io_phase("hdd", "read", 1024 * 1024), cpu_phase(millis(1))],
            name="io-heavy",
            on_complete=lambda t: order.append("io-heavy"),
        )
        kernel.spawn_thread(
            process, [cpu_phase(millis(2))], name="cpu-only",
            on_complete=lambda t: order.append("cpu-only"),
        )
        engine.run()
        # The CPU-only thread finishes while the other waits for its HDD read.
        assert order == ["cpu-only", "io-heavy"]


class TestTermination:
    def test_terminate_running_thread(self, engine):
        kernel = make_kernel(engine, cores=1)
        process = kernel.create_process("svc", TenantCategory.PRIMARY)
        thread = kernel.spawn_thread(process, [cpu_phase(math.inf)])
        engine.run(until=millis(5))
        kernel.terminate_thread(thread)
        assert thread.terminated
        assert kernel.idle_core_count() == 1

    def test_terminate_queued_thread(self, engine):
        kernel = make_kernel(engine, cores=1, quantum=millis(50))
        process = kernel.create_process("svc", TenantCategory.PRIMARY)
        kernel.spawn_thread(process, [cpu_phase(math.inf)])
        waiting = kernel.spawn_thread(process, [cpu_phase(millis(1))])
        engine.run(until=millis(5))
        assert waiting.state == ThreadState.READY
        kernel.terminate_thread(waiting)
        assert waiting.terminated
        assert kernel.scheduler.ready_queue_length() == 0

    def test_terminate_process_kills_all_threads(self, engine):
        kernel = make_kernel(engine, cores=2)
        process = kernel.create_process("svc", TenantCategory.PRIMARY)
        threads = [kernel.spawn_thread(process, [cpu_phase(math.inf)]) for _ in range(3)]
        engine.run(until=millis(5))
        kernel.scheduler.terminate_process(process)
        assert all(t.terminated for t in threads)
        assert not process.alive

    def test_terminated_thread_completion_callback_not_called(self, engine):
        kernel = make_kernel(engine, cores=1)
        process = kernel.create_process("svc", TenantCategory.PRIMARY)
        finished = []
        thread = kernel.spawn_thread(
            process,
            [io_phase("hdd", "read", 1024 * 1024), cpu_phase(millis(1))],
            on_complete=lambda t: finished.append(True),
        )
        kernel.terminate_thread(thread)
        engine.run()
        assert finished == []


class TestSmtAndPlacement:
    def test_dispatch_prefers_empty_physical_cores(self, engine):
        kernel = make_kernel(engine, cores=2, threads_per_core=2)
        process = kernel.create_process("svc", TenantCategory.PRIMARY)
        a = kernel.spawn_thread(process, [cpu_phase(millis(5))])
        b = kernel.spawn_thread(process, [cpu_phase(millis(5))])
        siblings = kernel.machine.topology.siblings(a.core_id)
        assert b.core_id not in siblings

    def test_smt_sharing_slows_execution(self, engine):
        kernel = make_kernel(engine, cores=1, threads_per_core=2, smt_slowdown=0.5)
        process = kernel.create_process("svc", TenantCategory.PRIMARY)
        finished = {}
        kernel.spawn_thread(process, [cpu_phase(millis(10))], name="first",
                            on_complete=lambda t: finished.setdefault("first", engine.now))
        kernel.spawn_thread(process, [cpu_phase(millis(10))], name="second",
                            on_complete=lambda t: finished.setdefault("second", engine.now))
        engine.run()
        # Both threads share one physical core, so 10 ms of work takes ~20 ms.
        assert finished["second"] >= millis(18)

    def test_global_placement_mode_still_works(self, engine):
        kernel = make_kernel(engine, cores=2, placement="global", quantum=millis(10))
        process = kernel.create_process("svc", TenantCategory.PRIMARY)
        finished = []
        for _ in range(4):
            kernel.spawn_thread(process, [cpu_phase(millis(5))],
                                on_complete=lambda t: finished.append(engine.now))
        engine.run()
        assert len(finished) == 4

    def test_work_stealing_keeps_scheduler_work_conserving(self, engine):
        kernel = make_kernel(engine, cores=2, quantum=millis(20))
        batch = kernel.create_process("batch", TenantCategory.SECONDARY)
        # Two infinite threads occupy both cores; two short threads queue.
        kernel.spawn_thread(batch, [cpu_phase(math.inf)])
        kernel.spawn_thread(batch, [cpu_phase(math.inf)])
        primary = kernel.create_process("svc", TenantCategory.PRIMARY)
        finished = []
        for _ in range(2):
            kernel.spawn_thread(primary, [cpu_phase(millis(1))],
                                on_complete=lambda t: finished.append(engine.now))
        engine.run(until=0.2)
        assert len(finished) == 2
        # Once the first quantum expires both waiting threads complete quickly,
        # even if they were queued on the same core (one is stolen).
        assert max(finished) < millis(45)
