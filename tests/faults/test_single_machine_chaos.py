"""Engine-level fault injection through the single-machine experiment.

Each test runs a chaos scenario end to end and checks the *observable*
consequences of the injected fault: the injector's event log, the controller
restart count, and the latency/throughput shifts the fault must cause.
"""

import dataclasses

import pytest

from repro.config.schema import (
    ControllerCrashSpec,
    DegradedCoreSpec,
    FaultPlanSpec,
    MachineFaultSpec,
    TelemetryFaultSpec,
)
from repro.config.validation import validate_experiment
from repro.errors import ConfigError
from repro.experiments import scenarios as sc
from repro.experiments.single_machine import SingleMachineExperiment

#: Short but long enough that every fault window opens and closes mid-run.
SHORT = dict(qps=600.0, duration=1.0, warmup=0.2, seed=5)


def run(spec):
    return SingleMachineExperiment(spec).run()


class TestControllerCrash:
    def test_crash_recovers_from_checkpoint(self):
        result = run(sc.chaos_controller_crash(**SHORT))
        assert result.extra["controller_restarts"] == 1.0
        assert result.extra["fault_events"] == 2.0  # crashed + recovered

    def test_crash_freezes_decisions_while_down(self):
        """While the controller is down the secondary keeps its last core
        grant — the healthy run must apply strictly more updates."""
        healthy = run(sc.blind_isolation(**SHORT))
        crashed = run(sc.chaos_controller_crash(recovery_delay=0.3, **SHORT))
        assert crashed.controller_polls < healthy.controller_polls

    def test_deterministic_per_seed(self):
        first = run(sc.chaos_controller_crash(**SHORT)).summary()
        second = run(sc.chaos_controller_crash(**SHORT)).summary()
        assert first == second


class TestDegradedCores:
    def test_slowdown_hurts_the_tail(self):
        healthy = run(sc.blind_isolation(**SHORT))
        degraded = run(sc.chaos_degraded_cores(slowdown=3.0, **SHORT))
        assert degraded.extra["fault_events"] == 2.0  # degraded + recovered
        p99 = lambda r: r.latency.as_millis()["p99_ms"]
        assert p99(degraded) > p99(healthy)

    def test_window_boundaries_recorded_in_order(self):
        spec = sc.chaos_degraded_cores(**SHORT)
        experiment = SingleMachineExperiment(spec)
        experiment.run()
        events = experiment.fault_injector.events
        assert [text for _, text in events] == [
            "cores degraded: 1.5x slowdown",
            "cores recovered: full speed",
        ]
        window = spec.faults.degraded
        assert events[0][0] == pytest.approx(window.start)
        assert events[1][0] == pytest.approx(window.end)


class TestTelemetryDropout:
    @pytest.mark.parametrize("mode", ["missing", "frozen"])
    def test_dropout_changes_controller_behaviour(self, mode):
        healthy = run(
            dataclasses.replace(
                sc.chaos_telemetry_dropout(mode=mode, **SHORT), faults=None
            )
        )
        degraded = run(sc.chaos_telemetry_dropout(mode=mode, **SHORT))
        assert degraded.extra["fault_events"] == 2.0
        # The PID controller reacts to P99 readings; blinding it mid-run must
        # change the decision trajectory (but never crash the run).
        assert degraded.controller_updates != healthy.controller_updates

    def test_modes_diverge_from_each_other(self):
        missing = run(sc.chaos_telemetry_dropout(mode="missing", **SHORT)).summary()
        frozen = run(sc.chaos_telemetry_dropout(mode="frozen", **SHORT)).summary()
        assert missing != frozen


class TestValidation:
    def test_machine_faults_rejected_on_experiments(self):
        spec = dataclasses.replace(
            sc.base_spec(),
            faults=FaultPlanSpec(machines=MachineFaultSpec(crash_rate_per_hour=1.0)),
        )
        with pytest.raises(ConfigError, match="fleet"):
            validate_experiment(spec)

    def test_controller_crash_requires_a_controller(self):
        spec = dataclasses.replace(
            sc.base_spec(),
            faults=FaultPlanSpec(controller_crash=ControllerCrashSpec(at=0.5)),
        )
        with pytest.raises(ConfigError, match="controller"):
            validate_experiment(spec)

    def test_fault_window_past_the_run_rejected(self):
        spec = dataclasses.replace(
            sc.blind_isolation(**SHORT),
            faults=FaultPlanSpec(
                degraded=DegradedCoreSpec(slowdown=2.0, start=99.0, duration=1.0)
            ),
        )
        with pytest.raises(ConfigError, match="never fire"):
            validate_experiment(spec)

    def test_registered_chaos_scenarios_validate(self):
        for build in (
            sc.chaos_controller_crash,
            lambda **kw: sc.chaos_telemetry_dropout(mode="frozen", **kw),
            sc.chaos_degraded_cores,
        ):
            validate_experiment(build(**SHORT))

    def test_telemetry_fault_mode_checked(self):
        with pytest.raises(ConfigError):
            TelemetryFaultSpec(mode="sideways", start=0.1, duration=0.1)
