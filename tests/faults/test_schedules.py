"""Property-based tests (hypothesis) for the deterministic fault schedules.

The invariants the whole fault subsystem rests on:

* crash/restart episodes are well-formed — ordered, non-overlapping,
  ``down < up``, capped at ``max_crashes``, first crash inside the horizon;
* a schedule is a pure function of (spec, seed, identity) — two draws agree
  byte-for-byte, and extending the horizon only ever *appends* episodes, so
  shard partitioning and worker count can never change what a machine sees;
* a zero-fault plan is a no-op — ``is_noop`` holds and a single-machine run
  carrying one is byte-identical to a run with no plan at all.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.schema import (
    DegradedCoreSpec,
    ExperimentSpec,
    FaultPlanSpec,
    MachineFaultSpec,
    WorkloadSpec,
)
from repro.faults import (
    expected_availability,
    fault_seed,
    machine_crash_episodes,
    machine_is_degraded,
)

machine_fault_specs = st.builds(
    MachineFaultSpec,
    crash_rate_per_hour=st.floats(min_value=0.1, max_value=500.0),
    mean_downtime=st.floats(min_value=1.0, max_value=600.0),
    max_crashes=st.integers(min_value=1, max_value=12),
)

identities = st.tuples(
    st.integers(min_value=0, max_value=2**31),  # seed
    st.sampled_from(("row-ml", "row-analytics", "row-storage")),  # group
    st.integers(min_value=0, max_value=5000),  # machine index
)


class TestCrashEpisodes:
    @settings(max_examples=200, deadline=None)
    @given(
        spec=machine_fault_specs,
        identity=identities,
        horizon=st.floats(min_value=1.0, max_value=100_000.0),
    )
    def test_episodes_are_well_formed(self, spec, identity, horizon):
        seed, group, index = identity
        episodes = machine_crash_episodes(
            spec, seed=seed, group=group, machine_index=index, horizon=horizon
        )
        assert len(episodes) <= spec.max_crashes
        previous_up = 0.0
        for down, up in episodes:
            assert down < up  # every outage has positive length
            assert down >= previous_up  # episodes never overlap
            assert down < horizon  # crashes only start inside the horizon
            previous_up = up

    @settings(max_examples=200, deadline=None)
    @given(spec=machine_fault_specs, identity=identities)
    def test_schedule_is_deterministic(self, spec, identity):
        seed, group, index = identity
        draws = [
            machine_crash_episodes(
                spec, seed=seed, group=group, machine_index=index, horizon=7200.0
            )
            for _ in range(2)
        ]
        assert draws[0] == draws[1]

    @settings(max_examples=200, deadline=None)
    @given(
        spec=machine_fault_specs,
        identity=identities,
        short=st.floats(min_value=1.0, max_value=5_000.0),
        extra=st.floats(min_value=0.0, max_value=50_000.0),
    )
    def test_longer_horizon_only_appends(self, spec, identity, short, extra):
        """The worker-count-independence lemma: a shard that truncates a
        machine's timeline at its own window sees exactly the prefix of the
        full-run schedule, never different draws."""
        seed, group, index = identity
        kwargs = dict(spec=spec, seed=seed, group=group, machine_index=index)
        prefix = machine_crash_episodes(horizon=short, **kwargs)
        full = machine_crash_episodes(horizon=short + extra, **kwargs)
        assert full[: len(prefix)] == prefix
        # Every appended episode starts at or past the short horizon.
        assert all(down >= short for down, _ in full[len(prefix) :])

    @settings(max_examples=100, deadline=None)
    @given(identity=identities)
    def test_disabled_spec_never_crashes(self, identity):
        seed, group, index = identity
        episodes = machine_crash_episodes(
            MachineFaultSpec(),
            seed=seed,
            group=group,
            machine_index=index,
            horizon=1e6,
        )
        assert episodes == ()

    def test_expected_availability_matches_renewal_formula(self):
        spec = MachineFaultSpec(crash_rate_per_hour=60.0, mean_downtime=60.0)
        # 60 crashes per uptime-hour -> one minute up, one minute down.
        assert math.isclose(expected_availability(spec), 0.5)
        assert expected_availability(MachineFaultSpec()) == 1.0


class TestDegradedMembership:
    @settings(max_examples=200, deadline=None)
    @given(
        identity=identities,
        fraction=st.floats(min_value=0.01, max_value=1.0),
    )
    def test_membership_is_deterministic(self, identity, fraction):
        seed, group, index = identity
        spec = DegradedCoreSpec(
            slowdown=2.0, start=0.0, duration=10.0, fraction_of_machines=fraction
        )
        draws = {
            machine_is_degraded(spec, seed=seed, group=group, machine_index=index)
            for _ in range(3)
        }
        assert len(draws) == 1

    @settings(max_examples=50, deadline=None)
    @given(identity=identities)
    def test_full_fraction_degrades_everyone(self, identity):
        seed, group, index = identity
        spec = DegradedCoreSpec(
            slowdown=2.0, start=0.0, duration=10.0, fraction_of_machines=1.0
        )
        assert machine_is_degraded(spec, seed=seed, group=group, machine_index=index)


class TestSeedStream:
    def test_fault_seed_is_stable_and_keyed(self):
        assert fault_seed("machine-crash", 7, "row-ml", 0) == fault_seed(
            "machine-crash", 7, "row-ml", 0
        )
        assert fault_seed("machine-crash", 7, "row-ml", 0) != fault_seed(
            "machine-crash", 7, "row-ml", 1
        )
        assert fault_seed("machine-crash", 7, "row-ml", 0) != fault_seed(
            "degraded-core", 7, "row-ml", 0
        )


class TestZeroFaultPlan:
    def test_empty_plan_is_noop(self):
        assert FaultPlanSpec().is_noop
        assert not FaultPlanSpec(
            machines=MachineFaultSpec(crash_rate_per_hour=1.0)
        ).is_noop
        # Present-but-disabled sub-specs are still a no-op.
        assert FaultPlanSpec(machines=MachineFaultSpec()).is_noop

    def test_noop_plan_run_is_byte_identical_to_no_plan(self):
        """The tentpole's zero-overhead contract at the behaviour level: an
        all-disabled fault plan must not perturb a single random draw."""
        from repro.experiments.single_machine import SingleMachineExperiment

        workload = WorkloadSpec(qps=400.0, duration=0.5, warmup=0.1)
        plain = ExperimentSpec(workload=workload, seed=11)
        noop = ExperimentSpec(
            workload=workload, seed=11, faults=FaultPlanSpec(machines=MachineFaultSpec())
        )
        assert SingleMachineExperiment(plain).run().summary() == (
            SingleMachineExperiment(noop).run().summary()
        )

    def test_default_spec_hash_unchanged_by_faults_field(self):
        """``faults=None`` is hash-omitted, so every pre-fault-subsystem
        cache key and golden spec hash survives verbatim."""
        from repro.runtime.spec_hash import spec_hash

        spec = ExperimentSpec()
        assert (
            spec_hash(spec)
            == "8da161b6589293975621cc6b81fe6ca38d5c2973149347dc402e4c9873f53a91"
        )
