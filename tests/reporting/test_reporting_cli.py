"""The shared CLI contract and the ``python -m repro.reporting`` entry point."""

import json
from pathlib import Path

import pytest

import repro.reporting as reporting
from repro.cli import (
    EXIT_FAILURES,
    EXIT_OK,
    EXIT_USAGE,
    parse_grid,
    resolve_output,
)
from repro.errors import ConfigError
from repro.experiments import matrix
from repro.fleet import cli as fleet_cli
from repro.reporting.bundle import load_bundle

FAST_ARGS = ["--duration", "0.3", "--warmup", "0.1"]
CAMPAIGN_ARGS = (
    ["--scenario", "no-isolation", "--seeds", "2", "--grid", "bully_threads=24"]
    + FAST_ARGS
)


class TestResolveOutput:
    def test_stdout_defaults_to_table(self):
        assert resolve_output(None, None) == ("table", None)

    def test_legacy_format_keyword_goes_to_stdout(self):
        assert resolve_output("json", None) == ("json", None)
        assert resolve_output("jsonl", None) == ("jsonl", None)

    def test_path_infers_format_from_extension(self):
        assert resolve_output("out/rows.csv", None) == ("csv", Path("out/rows.csv"))
        assert resolve_output("r.jsonl", None) == ("jsonl", Path("r.jsonl"))

    def test_explicit_format_overrides_extension(self):
        assert resolve_output("rows.dat", "json") == ("json", Path("rows.dat"))

    def test_conflicting_keyword_and_format_rejected(self):
        with pytest.raises(ConfigError, match="conflicts"):
            resolve_output("json", "csv")

    def test_uninferable_extension_rejected(self):
        with pytest.raises(ConfigError, match="cannot infer"):
            resolve_output("rows.dat", None)

    def test_matching_keyword_and_format_accepted(self):
        assert resolve_output("csv", "csv") == ("csv", None)


class TestParseGrid:
    def test_values_are_parsed_as_numbers(self):
        assert parse_grid(["a=1,2.5,x"]) == {"a": (1, 2.5, "x")}

    def test_malformed_entry_rejected(self):
        with pytest.raises(ConfigError, match="--grid"):
            parse_grid(["oops"])


class TestCampaignCli:
    def test_campaign_emits_validated_bundle(self, tmp_path, capsys):
        bundle_dir = tmp_path / "bundle"
        code = reporting.main(CAMPAIGN_ARGS + ["--bundle", str(bundle_dir)])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "2 of 2 replicates" in out
        bundle = load_bundle(bundle_dir)
        assert bundle.kind == "campaign"
        assert len(bundle.manifest["seeds"]) == 2
        assert bundle.summary, "campaign bundles carry the aggregated CI table"

    def test_campaign_summary_to_file_with_format_inference(self, tmp_path, capsys):
        out_path = tmp_path / "summary.csv"
        code = reporting.main(
            CAMPAIGN_ARGS
            + ["--bundle", str(tmp_path / "b"), "--out", str(out_path)]
        )
        assert code == EXIT_OK
        header = out_path.read_text(encoding="utf-8").splitlines()[0]
        assert header == "scenario,label,metric,n,mean,stddev,ci95,ci95_lo,ci95_hi"

    def test_campaign_is_worker_invariant(self, tmp_path, capsys):
        for workers, name in (("1", "serial"), ("4", "parallel")):
            code = reporting.main(
                CAMPAIGN_ARGS
                + ["--bundle", str(tmp_path / name), "--workers", workers]
            )
            assert code == EXIT_OK
        capsys.readouterr()
        for name in ("manifest.json", "rows.json", "summary.json"):
            assert (tmp_path / "serial" / name).read_bytes() == (
                tmp_path / "parallel" / name
            ).read_bytes()

    def test_unknown_scenario_is_a_usage_error(self, tmp_path, capsys):
        code = reporting.main(
            ["--scenario", "nope", "--bundle", str(tmp_path / "b")]
        )
        assert code == EXIT_USAGE
        assert "unknown scenario" in capsys.readouterr().err
        assert not (tmp_path / "b").exists()

    def test_validate_action(self, tmp_path, capsys):
        bundle_dir = tmp_path / "bundle"
        assert reporting.main(CAMPAIGN_ARGS + ["--bundle", str(bundle_dir)]) == EXIT_OK
        capsys.readouterr()
        assert reporting.main(["--validate", str(bundle_dir)]) == EXIT_OK
        assert "kind=campaign" in capsys.readouterr().out

    def test_validate_rejects_tampered_bundle(self, tmp_path, capsys):
        bundle_dir = tmp_path / "bundle"
        assert reporting.main(CAMPAIGN_ARGS + ["--bundle", str(bundle_dir)]) == EXIT_OK
        rows = bundle_dir / "rows.json"
        rows.write_bytes(rows.read_bytes()[:-2])
        assert reporting.main(["--validate", str(bundle_dir)]) == EXIT_USAGE
        assert "mismatch" in capsys.readouterr().err

    def test_trajectory_action(self, tmp_path, capsys):
        assert (
            reporting.main(CAMPAIGN_ARGS + ["--bundle", str(tmp_path / "b")])
            == EXIT_OK
        )
        capsys.readouterr()
        code = reporting.main(["--trajectory", str(tmp_path), "--out", "json"])
        assert code == EXIT_OK
        (row,) = json.loads(capsys.readouterr().out)
        assert row["kind"] == "campaign" and row["name"] == "no-isolation"

    def test_merge_bench_action(self, tmp_path, capsys):
        target = tmp_path / "BENCH_custom.json"
        target.write_text('{\n  "a": 1\n}\n', encoding="utf-8")
        code = reporting.main(
            ["--merge-bench", str(target), "--set", "b=2.5", "--set", "c=x"]
        )
        assert code == EXIT_OK
        assert json.loads(target.read_text(encoding="utf-8")) == {
            "a": 1, "b": 2.5, "c": "x",
        }

    def test_merge_bench_without_updates_is_usage_error(self, tmp_path, capsys):
        code = reporting.main(["--merge-bench", str(tmp_path / "x.json")])
        assert code == EXIT_USAGE


class TestBundleFlagOnRunCli:
    def test_matrix_bundle_matches_stdout_rows(self, tmp_path, capsys):
        bundle_dir = tmp_path / "bundle"
        code = matrix.main(
            ["--run", "no-isolation", "--grid", "bully_threads=24", "--qps", "500",
             "--duration", "0.3", "--warmup", "0.1", "--seed", "5",
             "--out", "json", "--bundle", str(bundle_dir)]
        )
        assert code == EXIT_OK
        stdout_rows = json.loads(capsys.readouterr().out)
        bundle = load_bundle(bundle_dir)
        assert bundle.kind == "matrix"
        assert bundle.rows == stdout_rows
        assert len(bundle.manifest["spec_hashes"]) == 1

    def test_matrix_out_path_writes_file(self, tmp_path, capsys):
        out_path = tmp_path / "rows.jsonl"
        code = matrix.main(
            ["--run", "no-isolation", "--grid", "bully_threads=24", "--qps", "500",
             "--duration", "0.3", "--warmup", "0.1", "--seed", "5",
             "--out", str(out_path)]
        )
        assert code == EXIT_OK
        lines = out_path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 1 and json.loads(lines[0])["bully_threads"] == 24

    def test_matrix_conflicting_out_and_format_is_usage_error(self, capsys):
        code = matrix.main(
            ["--run", "no-isolation", "--out", "json", "--format", "csv"]
        )
        assert code == EXIT_USAGE

    def test_fleet_bundle_validates(self, tmp_path, capsys):
        bundle_dir = tmp_path / "bundle"
        code = fleet_cli.main(
            ["--machines", "120", "--stages", "2", "--out", "json",
             "--bundle", str(bundle_dir)]
        )
        assert code == EXIT_OK
        bundle = load_bundle(bundle_dir)
        assert bundle.kind == "fleet"
        assert bundle.manifest["seeds"] == [7]
        assert bundle.rows[-1]["stage"] == "total"

    def test_exit_code_constants_are_the_documented_contract(self):
        assert (EXIT_OK, EXIT_FAILURES, EXIT_USAGE) == (0, 1, 2)
