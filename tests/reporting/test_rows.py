"""Row rendering: round trips, byte identity, and the legacy shims."""

import json

import pytest

from repro.errors import ConfigError
from repro.reporting.rows import (
    ROW_FORMATS,
    all_columns,
    parse_rows,
    render_rows,
    rows_to_csv,
    rows_to_json,
    rows_to_jsonl,
)

ROWS = [
    {"scenario": "s", "label": "s[a=1]", "a": 1, "p99_ms": 4.25},
    {"scenario": "s", "label": "s[a=2]", "a": 2, "p99_ms": 6.5, "extra": "x"},
]


class TestRendering:
    @pytest.mark.parametrize("fmt", ROW_FORMATS)
    def test_every_format_ends_with_exactly_one_newline(self, fmt):
        text = render_rows(ROWS, fmt)
        assert text.endswith("\n") and not text.endswith("\n\n")

    def test_json_is_sorted_key_deterministic(self):
        text = rows_to_json(ROWS)
        assert json.loads(text) == [dict(row) for row in ROWS]
        assert text.index('"a"') < text.index('"label"') < text.index('"p99_ms"')

    def test_jsonl_one_compact_object_per_line(self):
        lines = rows_to_jsonl(ROWS).splitlines()
        assert len(lines) == 2
        assert all(": " not in line for line in lines)
        assert json.loads(lines[1])["extra"] == "x"

    def test_csv_header_unions_ragged_columns(self):
        header = rows_to_csv(ROWS).splitlines()[0]
        assert header == "scenario,label,a,p99_ms,extra"

    def test_all_columns_first_appearance_order(self):
        assert all_columns(ROWS) == ["scenario", "label", "a", "p99_ms", "extra"]

    def test_unknown_format_rejected(self):
        with pytest.raises(ConfigError):
            render_rows(ROWS, "yaml")
        with pytest.raises(ConfigError):
            parse_rows("", "yaml")


class TestRoundTrips:
    @pytest.mark.parametrize("fmt", ("json", "jsonl"))
    def test_json_formats_round_trip_values_exactly(self, fmt):
        assert parse_rows(render_rows(ROWS, fmt), fmt) == ROWS

    @pytest.mark.parametrize("fmt", ROW_FORMATS)
    def test_parse_then_rerender_is_byte_identical(self, fmt):
        text = render_rows(ROWS, fmt)
        assert render_rows(parse_rows(text, fmt), fmt) == text


class TestLegacyShims:
    """The old experiments.reporting renderers delegate, byte-identically."""

    def test_rows_to_json_shim_warns_and_matches(self):
        import repro.experiments.reporting as legacy

        with pytest.warns(DeprecationWarning, match="rows_to_json moved"):
            old = legacy.rows_to_json(ROWS)
        assert old == rows_to_json(ROWS)

    def test_rows_to_csv_shim_warns_and_matches(self):
        import repro.experiments.reporting as legacy

        with pytest.warns(DeprecationWarning, match="rows_to_csv moved"):
            old = legacy.rows_to_csv(ROWS)
        assert old == rows_to_csv(ROWS)

    def test_package_level_reexport_still_works(self):
        from repro.experiments import rows_to_csv as reexported

        with pytest.warns(DeprecationWarning):
            assert reexported(ROWS) == rows_to_csv(ROWS)
