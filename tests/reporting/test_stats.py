"""Replicate statistics: t table, summaries, long-format aggregation."""

import math

import pytest

from repro.errors import ConfigError
from repro.reporting.stats import aggregate_rows, summarize, t_critical_95


class TestTCritical:
    def test_tabled_values(self):
        assert t_critical_95(1) == 12.706
        assert t_critical_95(2) == 4.303
        assert t_critical_95(30) == 2.042

    def test_untabled_df_uses_largest_tabled_below(self):
        # Conservative: df 35 gets the df-30 value, never the narrower df-40.
        assert t_critical_95(35) == t_critical_95(30)
        assert t_critical_95(119) == t_critical_95(60)

    def test_large_df_approaches_normal_limit(self):
        assert t_critical_95(10_000) == 1.960

    def test_invalid_df_rejected(self):
        with pytest.raises(ConfigError):
            t_critical_95(0)


class TestSummarize:
    def test_known_triple(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary["n"] == 3
        assert summary["mean"] == 2.0
        assert summary["stddev"] == pytest.approx(1.0)
        assert summary["ci95"] == pytest.approx(4.303 / math.sqrt(3))
        assert summary["ci95_lo"] == pytest.approx(2.0 - summary["ci95"])
        assert summary["ci95_hi"] == pytest.approx(2.0 + summary["ci95"])

    def test_single_replicate_has_zero_width(self):
        summary = summarize([7.5])
        assert summary["mean"] == 7.5
        assert summary["stddev"] == 0.0
        assert summary["ci95"] == 0.0
        assert summary["ci95_lo"] == summary["ci95_hi"] == 7.5

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            summarize([])


def _replicate(label, p99, progress, seed_only=None):
    row = {"scenario": "s", "label": label, "p99_ms": p99, "progress": progress}
    if seed_only is not None:
        row["seed_only"] = seed_only
    return row


class TestAggregateRows:
    def test_long_format_output(self):
        replicates = [
            [_replicate("a", 10.0, 100), _replicate("b", 20.0, 200)],
            [_replicate("a", 12.0, 100), _replicate("b", 22.0, 200)],
        ]
        out = aggregate_rows(replicates)
        # Label-major, then column order: a/p99, a/progress, b/p99, b/progress.
        assert [(row["label"], row["metric"]) for row in out] == [
            ("a", "p99_ms"), ("a", "progress"), ("b", "p99_ms"), ("b", "progress"),
        ]
        first = out[0]
        assert first["scenario"] == "s"
        assert first["n"] == 2
        assert first["mean"] == pytest.approx(11.0)

    def test_excluded_and_identity_columns_are_not_metrics(self):
        replicates = [[{"scenario": "s", "label": "a", "axis": 3, "p99_ms": 1.0}]]
        out = aggregate_rows(replicates, exclude=("axis",))
        assert [row["metric"] for row in out] == ["p99_ms"]

    def test_bools_aggregate_as_rates(self):
        replicates = [
            [{"label": "a", "slo_met": True}],
            [{"label": "a", "slo_met": False}],
        ]
        (row,) = aggregate_rows(replicates, identity=("label",))
        assert row["mean"] == 0.5

    def test_variant_count_mismatch_rejected(self):
        with pytest.raises(ConfigError, match="variant count"):
            aggregate_rows([[_replicate("a", 1, 1)], []])

    def test_label_misalignment_rejected(self):
        with pytest.raises(ConfigError, match="misaligned"):
            aggregate_rows([[_replicate("a", 1, 1)], [_replicate("b", 1, 1)]])

    def test_non_finite_values_skipped(self):
        replicates = [
            [{"label": "a", "p99_ms": 1.0}],
            [{"label": "a", "p99_ms": float("nan")}],
        ]
        (row,) = aggregate_rows(replicates, identity=("label",))
        assert row["n"] == 1
