"""Bundle writer/loader: byte identity, digests, and schema-skew refusal."""

import json

import pytest

from repro.errors import ReportingError
from repro.reporting.bundle import (
    BUNDLE_SCHEMA_VERSION,
    MANIFEST_NAME,
    load_bundle,
    validate_bundle,
    write_bundle,
)
from repro.reporting.rows import ROW_FORMATS

ROWS = [
    {"scenario": "s", "label": "s[a=1]", "a": 1, "p99_ms": 4.25},
    {"scenario": "s", "label": "s[a=2]", "a": 2, "p99_ms": 6.5},
]
SUMMARY = [{"scenario": "s", "label": "s[a=1]", "metric": "p99_ms", "mean": 4.25}]


def _write(directory, **overrides):
    kwargs = dict(
        kind="matrix",
        name="s",
        rows=ROWS,
        seeds=[1, 2],
        spec_hashes=["b" * 64, "a" * 64],
        summary=SUMMARY,
        bench={"events_per_s": 1000.0},
        meta={"note": "test"},
    )
    kwargs.update(overrides)
    return write_bundle(directory, **kwargs)


class TestRoundTrip:
    @pytest.mark.parametrize("fmt", ROW_FORMATS)
    def test_load_and_rerender_is_byte_identical(self, tmp_path, fmt):
        directory = _write(tmp_path / "b", fmt=fmt)
        bundle = load_bundle(directory)
        on_disk = (directory / f"rows.{fmt}").read_text(encoding="utf-8")
        assert bundle.rerender_rows() == on_disk

    def test_repeat_writes_are_byte_identical(self, tmp_path):
        first = _write(tmp_path / "one")
        second = _write(tmp_path / "two")
        for name in ("manifest.json", "rows.json", "summary.json", "bench.json"):
            assert (first / name).read_bytes() == (second / name).read_bytes()

    def test_loaded_payloads(self, tmp_path):
        bundle = load_bundle(_write(tmp_path / "b"))
        assert bundle.kind == "matrix"
        assert bundle.name == "s"
        assert bundle.rows == ROWS
        assert bundle.summary == SUMMARY
        assert bundle.bench == {"events_per_s": 1000.0}
        assert bundle.manifest["seeds"] == [1, 2]
        # Hashes are stored sorted and deduplicated.
        assert bundle.manifest["spec_hashes"] == ["a" * 64, "b" * 64]

    def test_manifest_has_no_timestamps(self, tmp_path):
        manifest = json.loads(
            (_write(tmp_path / "b") / MANIFEST_NAME).read_text(encoding="utf-8")
        )
        rendered = json.dumps(manifest)
        assert "time" not in rendered and "date" not in rendered

    def test_extra_files_are_digested(self, tmp_path):
        directory = _write(tmp_path / "b", extra_files={"trace.jsonl": b"{}\n"})
        manifest = validate_bundle(directory)
        assert "trace.jsonl" in manifest["files"]


class TestValidationRefusals:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ReportingError, match="not a bundle"):
            validate_bundle(tmp_path)

    def test_version_skew_refused(self, tmp_path):
        directory = _write(tmp_path / "b")
        manifest_path = directory / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        manifest["schema"] = BUNDLE_SCHEMA_VERSION + 1
        manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(ReportingError, match="unsupported bundle schema"):
            validate_bundle(directory)

    def test_corrupted_rows_file_refused(self, tmp_path):
        directory = _write(tmp_path / "b")
        rows_path = directory / "rows.json"
        # Same length, different bytes: only the digest catches it.
        payload = bytearray(rows_path.read_bytes())
        payload[0:1] = b" "
        rows_path.write_bytes(bytes(payload))
        with pytest.raises(ReportingError, match="digest mismatch"):
            validate_bundle(directory)

    def test_truncated_file_refused(self, tmp_path):
        directory = _write(tmp_path / "b")
        rows_path = directory / "rows.json"
        rows_path.write_bytes(rows_path.read_bytes()[:-5])
        with pytest.raises(ReportingError, match="size mismatch"):
            validate_bundle(directory)

    def test_missing_payload_file_refused(self, tmp_path):
        directory = _write(tmp_path / "b")
        (directory / "summary.json").unlink()
        with pytest.raises(ReportingError, match="missing"):
            validate_bundle(directory)

    def test_missing_required_key_refused(self, tmp_path):
        directory = _write(tmp_path / "b")
        manifest_path = directory / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        del manifest["spec_hashes"]
        manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(ReportingError, match="spec_hashes"):
            validate_bundle(directory)

    def test_unknown_kind_refused(self, tmp_path):
        with pytest.raises(ReportingError, match="unknown bundle kind"):
            write_bundle(tmp_path / "b", kind="mystery", name="x", rows=[])

    def test_unknown_row_format_refused(self, tmp_path):
        with pytest.raises(ReportingError, match="unknown row format"):
            write_bundle(tmp_path / "b", kind="matrix", name="x", rows=[], fmt="xml")

    def test_duplicate_extra_file_name_refused(self, tmp_path):
        with pytest.raises(ReportingError, match="duplicate"):
            _write(tmp_path / "b", extra_files={"rows.json": b""})
