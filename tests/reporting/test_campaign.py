"""Campaigns: seed derivation, worker invariance, caching, failure isolation."""

import pytest

from repro.config.schema import CampaignSpec
from repro.errors import ConfigError
from repro.experiments import matrix
from repro.reporting.bundle import load_bundle, validate_bundle
from repro.reporting.campaign import make_campaign, run_campaign, write_campaign_bundle
from repro.runtime import ExperimentRunner, ResultCache, derive_seed, replicate_seeds

FAST = dict(qps=500.0, duration=0.3, warmup=0.1)
GRID = {"bully_threads": (24,)}


def _campaign(replicates=2, base_seed=5, **overrides):
    common = dict(FAST)
    common.update(overrides)
    return make_campaign(
        "no-isolation", replicates=replicates, base_seed=base_seed, grid=GRID, **common
    )


def _runner(workers=1):
    return ExperimentRunner(max_workers=workers, cache=ResultCache())


class TestSeedDerivation:
    def test_replicate_zero_is_the_base_seed(self):
        assert derive_seed(42, 0) == 42
        assert replicate_seeds(42, 3)[0] == 42

    def test_derivation_is_deterministic_and_distinct(self):
        seeds = replicate_seeds(7, 8)
        assert seeds == replicate_seeds(7, 8)
        assert len(set(seeds)) == 8

    def test_different_bases_derive_different_tails(self):
        assert replicate_seeds(1, 4)[1:] != replicate_seeds(2, 4)[1:]

    def test_labels_partition_the_seed_space(self):
        assert derive_seed(1, 1, label="x") != derive_seed(1, 1, label="y")


class TestCampaignSpec:
    def test_defaults_validate(self):
        spec = CampaignSpec(scenario="no-isolation")
        assert spec.replicates == 5 and spec.base_seed == 1

    def test_invalid_specs_rejected(self):
        with pytest.raises(ConfigError):
            CampaignSpec(scenario="")
        with pytest.raises(ConfigError):
            CampaignSpec(scenario="s", replicates=0)
        with pytest.raises(ConfigError):
            CampaignSpec(scenario="s", duration=-1.0)


class TestRunCampaign:
    def test_replicates_and_summary(self):
        result = run_campaign(_campaign(), runner=_runner())
        assert len(result.seeds) == 2
        assert result.seeds[0] == 5
        assert len(result.replicates) == 2
        assert result.variant_count == 1
        assert not result.failures
        # Two distinct seeds -> two distinct variant hashes.
        assert len(result.spec_hashes) == 2
        raw = result.raw_rows()
        assert [row["replicate"] for row in raw] == [0, 1]
        assert [row["seed"] for row in raw] == list(result.seeds)
        summary = result.summary_rows()
        assert summary and all(row["n"] == 2 for row in summary)
        # The scenario's axis is an input, not a measured metric.
        assert "bully_threads" not in {row["metric"] for row in summary}

    def test_rows_are_worker_invariant(self):
        serial = run_campaign(_campaign(), runner=_runner(1))
        parallel = run_campaign(_campaign(), runner=_runner(4))
        assert serial.raw_rows() == parallel.raw_rows()
        assert serial.summary_rows() == parallel.summary_rows()

    def test_rerun_is_served_from_cache(self):
        runner = _runner()
        cold = run_campaign(_campaign(), runner=runner)
        warm = run_campaign(_campaign(), runner=runner)
        assert warm.cache_hits == len(warm.seeds) * warm.variant_count
        assert warm.raw_rows() == cold.raw_rows()

    def test_replicate_zero_reuses_single_seed_run(self):
        # A historical single-seed run primes the cache for replicate 0.
        runner = _runner()
        matrix.run_scenario(
            "no-isolation", runner=runner, grid=GRID, seed=5, **FAST
        )
        result = run_campaign(_campaign(), runner=runner)
        assert result.cache_hits >= 1

    def test_unknown_scenario_rejected_before_running(self):
        with pytest.raises(ConfigError, match="unknown scenario"):
            run_campaign(make_campaign("nope"), runner=_runner())

    def test_bad_grid_rejected_before_running(self):
        spec = make_campaign("no-isolation", grid={"nope": (1,)}, **FAST)
        with pytest.raises(ConfigError, match="no axis"):
            run_campaign(spec, runner=_runner())

    def test_unseedable_scenario_rejected(self):
        def fixed_builder(qps=500.0, duration=0.5, warmup=0.1):
            raise AssertionError("must be rejected before building")

        matrix.register(
            matrix.Scenario(
                name="unseedable-test",
                description="no seed parameter, for campaign rejection tests",
                builder=fixed_builder,
            )
        )
        try:
            with pytest.raises(ConfigError, match="seed"):
                run_campaign(make_campaign("unseedable-test"), runner=_runner())
        finally:
            matrix._REGISTRY.pop("unseedable-test", None)

    def test_mid_campaign_failure_is_isolated(self):
        calls = {"count": 0}

        def flaky_builder(qps=500.0, duration=0.3, warmup=0.1, seed=5):
            calls["count"] += 1
            if seed != 5:
                raise RuntimeError("injected replicate failure")
            return matrix.get_scenario("no-isolation").builder(
                bully_threads=24, qps=qps, duration=duration, warmup=warmup, seed=seed
            )

        matrix.register(
            matrix.Scenario(
                name="flaky-test",
                description="fails for every derived seed",
                builder=flaky_builder,
            )
        )
        try:
            result = run_campaign(
                make_campaign("flaky-test", replicates=3, base_seed=5, **FAST),
                runner=_runner(),
            )
        finally:
            matrix._REGISTRY.pop("flaky-test", None)
        assert len(result.replicates) == 1
        assert result.replicate_indices == [0]
        assert len(result.failures) == 2
        assert all("RuntimeError" in f["error"] for f in result.failures)
        # Raw rows keep the original replicate indices, not a renumbering.
        assert [row["replicate"] for row in result.raw_rows()] == [0]


class TestCampaignBundle:
    def test_bundle_round_trip(self, tmp_path):
        result = run_campaign(_campaign(), runner=_runner())
        directory = write_campaign_bundle(result, tmp_path / "bundle")
        bundle = load_bundle(directory)
        assert bundle.kind == "campaign"
        assert bundle.rows == result.raw_rows()
        assert bundle.summary == result.summary_rows()
        assert bundle.manifest["seeds"] == list(result.seeds)
        assert bundle.manifest["meta"]["scenario"] == "no-isolation"

    def test_bundle_is_worker_invariant(self, tmp_path):
        serial = write_campaign_bundle(
            run_campaign(_campaign(), runner=_runner(1)), tmp_path / "serial"
        )
        parallel = write_campaign_bundle(
            run_campaign(_campaign(), runner=_runner(4)), tmp_path / "parallel"
        )
        for name in ("manifest.json", "rows.json", "summary.json"):
            assert (serial / name).read_bytes() == (parallel / name).read_bytes()

    def test_bundle_validates(self, tmp_path):
        directory = write_campaign_bundle(
            run_campaign(_campaign(), runner=_runner()), tmp_path / "bundle"
        )
        manifest = validate_bundle(directory)
        assert manifest["kind"] == "campaign"
