"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest
from hypothesis import HealthCheck, settings as hypothesis_settings

# Named hypothesis profiles.  CI exports HYPOTHESIS_PROFILE=ci: derandomized
# (example generation is seeded per test, so a slow shared runner can never
# surface a new falsifying example that local runs then fail to reproduce)
# and with the deadline disabled (wall-clock flake under noisy-neighbour CI
# CPU is not a property violation).  Local runs keep the default profile and
# its randomized exploration.
hypothesis_settings.register_profile(
    "ci",
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
hypothesis_settings.register_profile("default", hypothesis_settings())
hypothesis_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))

# Allow running the tests from a source checkout without installation.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

# Make the fleet test helpers importable as ``fleet_testing`` from anywhere
# (tests/fleet has no conftest of its own: a third conftest.py would collide
# with the flat module names pytest gives tests/conftest.py and
# benchmarks/conftest.py).
_FLEET = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fleet")
if _FLEET not in sys.path:
    sys.path.insert(0, _FLEET)

from repro.config.schema import (  # noqa: E402
    ExperimentSpec,
    IndexServeSpec,
    MachineSpec,
    SchedulerSpec,
    WorkloadSpec,
)
from repro.hardware.machine import Machine  # noqa: E402
from repro.hostos.syscalls import Kernel  # noqa: E402
from repro.simulation.engine import SimulationEngine  # noqa: E402
from repro.simulation.randomness import RandomStreams  # noqa: E402


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/experiments/goldens/*.json from the current simulator "
        "output instead of comparing against it",
    )


@pytest.fixture
def update_goldens(request) -> bool:
    return request.config.getoption("--update-goldens")


@pytest.fixture
def engine() -> SimulationEngine:
    return SimulationEngine()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


@pytest.fixture
def streams() -> RandomStreams:
    return RandomStreams(42)


@pytest.fixture
def small_machine_spec() -> MachineSpec:
    """A small machine (8 logical cores) to keep scheduler tests fast."""
    return MachineSpec(sockets=1, cores_per_socket=4, threads_per_core=2)


@pytest.fixture
def machine(engine, small_machine_spec, rng) -> Machine:
    return Machine(engine, small_machine_spec, name="test-machine", rng=rng)


@pytest.fixture
def big_machine(engine, rng) -> Machine:
    """The paper's 48-logical-core server."""
    return Machine(engine, MachineSpec(), name="big-machine", rng=rng)


@pytest.fixture
def kernel(engine, machine) -> Kernel:
    return Kernel(engine, machine, SchedulerSpec())


@pytest.fixture
def big_kernel(engine, big_machine) -> Kernel:
    return Kernel(engine, big_machine, SchedulerSpec())


def make_fast_experiment_spec(
    qps: float = 600.0,
    duration: float = 1.0,
    warmup: float = 0.2,
    seed: int = 5,
    **overrides,
) -> ExperimentSpec:
    """A small, quick experiment specification for integration tests."""
    spec = ExperimentSpec(
        workload=WorkloadSpec(qps=qps, duration=duration, warmup=warmup, trace_queries=2000),
        indexserve=IndexServeSpec(),
        seed=seed,
    )
    return spec.replace(**overrides) if overrides else spec


@pytest.fixture
def fast_spec() -> ExperimentSpec:
    return make_fast_experiment_spec()


# ----------------------------------------------------------------- fleet tests
@pytest.fixture(scope="session")
def fleet_runner():
    """One runner (and cache) shared by every fleet test in the session.

    Calibration runs are the expensive part of a fleet simulation; sharing
    the cache means the tiny calibration specs are simulated exactly once.
    """
    from repro.runtime import ExperimentRunner, ResultCache

    return ExperimentRunner(max_workers=2, cache=ResultCache())


@pytest.fixture
def tiny_fleet_spec():
    from fleet_testing import make_tiny_fleet_spec

    return make_tiny_fleet_spec()
