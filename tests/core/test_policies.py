"""Tests for the CPU isolation policies."""

import pytest

from repro.config.schema import BlindIsolationSpec, CpuCycleSpec, StaticCoreSpec
from repro.core.policies import (
    AllocationDecision,
    BlindIsolationPolicy,
    CpuCyclesPolicy,
    NoIsolationPolicy,
    StaticCoresPolicy,
    build_policy,
)
from repro.errors import IsolationError


class TestAllocationDecision:
    def test_exactly_one_knob_required(self):
        AllocationDecision(core_count=4)
        AllocationDecision(cpu_rate=0.5)
        AllocationDecision(unrestricted=True)
        with pytest.raises(IsolationError):
            AllocationDecision()
        with pytest.raises(IsolationError):
            AllocationDecision(core_count=4, cpu_rate=0.5)

    def test_value_validation(self):
        with pytest.raises(IsolationError):
            AllocationDecision(core_count=-1)
        with pytest.raises(IsolationError):
            AllocationDecision(cpu_rate=0.0)


class TestBlindIsolationPolicy:
    def test_initial_allocation_leaves_buffer(self):
        policy = BlindIsolationPolicy(BlindIsolationSpec(buffer_cores=8))
        decision = policy.initial_decision(48)
        assert decision.core_count == 40

    def test_buffer_must_fit_machine(self):
        policy = BlindIsolationPolicy(BlindIsolationSpec(buffer_cores=8))
        with pytest.raises(IsolationError):
            policy.initial_decision(8)

    def test_shrinks_when_idle_below_buffer(self):
        """The paper's rule: if I < B, S is decreased."""
        policy = BlindIsolationPolicy(BlindIsolationSpec(buffer_cores=8))
        decision = policy.poll_decision(total_cores=48, idle_cores=3, current_core_count=30)
        assert decision.core_count == 25

    def test_grows_when_idle_above_buffer(self):
        """The paper's rule: if I > B, S is increased."""
        policy = BlindIsolationPolicy(BlindIsolationSpec(buffer_cores=8))
        decision = policy.poll_decision(total_cores=48, idle_cores=14, current_core_count=20)
        assert decision.core_count == 26

    def test_no_change_at_exact_buffer(self):
        policy = BlindIsolationPolicy(BlindIsolationSpec(buffer_cores=8))
        assert policy.poll_decision(48, 8, 30) is None

    def test_never_exceeds_total_minus_buffer(self):
        policy = BlindIsolationPolicy(BlindIsolationSpec(buffer_cores=8))
        decision = policy.poll_decision(48, 30, 38)
        assert decision is None or decision.core_count <= 40
        assert policy.poll_decision(48, 48, 40) is None

    def test_never_goes_below_min_secondary(self):
        policy = BlindIsolationPolicy(BlindIsolationSpec(buffer_cores=8, min_secondary_cores=2))
        decision = policy.poll_decision(48, 0, 4)
        assert decision.core_count == 2
        assert policy.poll_decision(48, 0, 2) is None

    def test_max_step_limits_adjustment(self):
        policy = BlindIsolationPolicy(BlindIsolationSpec(buffer_cores=8, max_step=2))
        decision = policy.poll_decision(48, 0, 30)
        assert decision.core_count == 28

    def test_none_current_uses_initial_allocation(self):
        policy = BlindIsolationPolicy(BlindIsolationSpec(buffer_cores=8))
        decision = policy.poll_decision(48, 2, None)
        assert decision.core_count == 34


class TestStaticAndCyclePolicies:
    def test_static_cores_fixed_allocation(self):
        policy = StaticCoresPolicy(StaticCoreSpec(secondary_cores=16))
        assert policy.initial_decision(48).core_count == 16
        assert policy.poll_decision(48, 0, 16) is None

    def test_static_cores_clamped_to_machine(self):
        policy = StaticCoresPolicy(StaticCoreSpec(secondary_cores=64))
        assert policy.initial_decision(48).core_count == 48

    def test_cpu_cycles_sets_rate(self):
        policy = CpuCyclesPolicy(CpuCycleSpec(cpu_fraction=0.05))
        decision = policy.initial_decision(48)
        assert decision.cpu_rate == pytest.approx(0.05)
        assert policy.poll_decision(48, 0, None) is None

    def test_no_isolation_unrestricted(self):
        policy = NoIsolationPolicy()
        assert policy.initial_decision(48).unrestricted
        assert policy.poll_decision(48, 0, None) is None


class TestBuildPolicy:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("blind", BlindIsolationPolicy),
            ("static_cores", StaticCoresPolicy),
            ("cpu_cycles", CpuCyclesPolicy),
            ("none", NoIsolationPolicy),
        ],
    )
    def test_known_policies(self, name, expected):
        assert isinstance(build_policy(name), expected)

    def test_unknown_policy_rejected(self):
        with pytest.raises(IsolationError):
            build_policy("quantum")
