"""Tests for the PerfIso controller service."""

import math

import pytest

from repro.config.schema import (
    BlindIsolationSpec,
    CpuBullySpec,
    CpuCycleSpec,
    PerfIsoSpec,
    StaticCoreSpec,
)
from repro.core.controller import PerfIsoController
from repro.errors import IsolationError
from repro.hostos.process import TenantCategory
from repro.hostos.thread import cpu_phase
from repro.tenants.cpu_bully import CpuBullyTenant
from repro.units import millis


def blind_spec(buffer_cores=2, poll_interval=millis(1)):
    return PerfIsoSpec(
        cpu_policy="blind",
        blind=BlindIsolationSpec(buffer_cores=buffer_cores),
        poll_interval=poll_interval,
    )


class TestLifecycle:
    def test_initial_allocation_applied_on_start(self, kernel):
        controller = PerfIsoController(kernel, blind_spec(buffer_cores=2))
        controller.start()
        assert controller.secondary_core_count == kernel.logical_cores - 2
        assert controller.secondary_affinity is not None

    def test_double_start_rejected(self, kernel):
        controller = PerfIsoController(kernel, blind_spec())
        controller.start()
        with pytest.raises(IsolationError):
            controller.start()

    def test_primary_never_managed(self, kernel):
        controller = PerfIsoController(kernel, blind_spec())
        primary = kernel.create_process("svc", TenantCategory.PRIMARY)
        with pytest.raises(IsolationError):
            controller.manage_process(primary)

    def test_manage_attaches_tenant_to_job(self, kernel):
        controller = PerfIsoController(kernel, blind_spec())
        bully = CpuBullyTenant(kernel, CpuBullySpec(threads=2, memory_bytes=1024))
        bully.start()
        controller.manage(bully)
        assert bully.process.job is controller.job


class TestBlindIsolationLoop:
    def test_buffer_maintained_under_load(self, engine, kernel):
        """With a saturating secondary, roughly `buffer` cores stay idle."""
        controller = PerfIsoController(kernel, blind_spec(buffer_cores=2))
        bully = CpuBullyTenant(kernel, CpuBullySpec(threads=16, memory_bytes=1024))
        bully.start()
        controller.manage(bully)
        controller.start()
        engine.run(until=0.2)
        assert kernel.idle_core_count() == pytest.approx(2, abs=1)
        assert controller.polls > 50
        assert controller.secondary_core_count <= kernel.logical_cores - 2

    def test_secondary_shrinks_when_primary_arrives(self, engine, kernel):
        controller = PerfIsoController(kernel, blind_spec(buffer_cores=2))
        bully = CpuBullyTenant(kernel, CpuBullySpec(threads=16, memory_bytes=1024))
        bully.start()
        controller.manage(bully)
        controller.start()
        engine.run(until=0.05)
        allocation_before = controller.secondary_core_count
        primary = kernel.create_process("svc", TenantCategory.PRIMARY)
        for _ in range(4):
            kernel.spawn_thread(primary, [cpu_phase(math.inf)])
        engine.run(until=0.15)
        assert controller.secondary_core_count < allocation_before

    def test_secondary_grows_back_when_primary_leaves(self, engine, kernel):
        controller = PerfIsoController(kernel, blind_spec(buffer_cores=2))
        bully = CpuBullyTenant(kernel, CpuBullySpec(threads=16, memory_bytes=1024))
        bully.start()
        controller.manage(bully)
        controller.start()
        primary = kernel.create_process("svc", TenantCategory.PRIMARY)
        threads = [kernel.spawn_thread(primary, [cpu_phase(math.inf)]) for _ in range(4)]
        engine.run(until=0.1)
        squeezed = controller.secondary_core_count
        for thread in threads:
            kernel.terminate_thread(thread)
        engine.run(until=0.2)
        assert controller.secondary_core_count > squeezed

    def test_poll_update_split(self, engine, kernel):
        """Polling happens every interval; updates only when the target moves."""
        controller = PerfIsoController(kernel, blind_spec(buffer_cores=2))
        bully = CpuBullyTenant(kernel, CpuBullySpec(threads=16, memory_bytes=1024))
        bully.start()
        controller.manage(bully)
        controller.start()
        engine.run(until=0.3)
        assert controller.polls > controller.updates_applied


class TestOtherPolicies:
    def test_static_cores_applied(self, engine, kernel):
        spec = PerfIsoSpec(cpu_policy="static_cores", static_cores=StaticCoreSpec(secondary_cores=2))
        controller = PerfIsoController(kernel, spec)
        bully = CpuBullyTenant(kernel, CpuBullySpec(threads=8, memory_bytes=1024))
        bully.start()
        controller.manage(bully)
        controller.start()
        horizon = kernel.scheduler.spec.quantum * 2
        engine.run(until=horizon)
        assert controller.secondary_core_count == 2
        assert bully.cpu_seconds() == pytest.approx(horizon * 2, rel=0.1)

    def test_cpu_cycles_applied(self, engine, kernel):
        spec = PerfIsoSpec(cpu_policy="cpu_cycles", cpu_cycles=CpuCycleSpec(cpu_fraction=0.25))
        controller = PerfIsoController(kernel, spec)
        bully = CpuBullyTenant(kernel, CpuBullySpec(threads=8, memory_bytes=1024))
        bully.start()
        controller.manage(bully)
        controller.start()
        engine.run(until=0.4)
        share = bully.cpu_seconds() / (0.4 * kernel.logical_cores)
        assert share == pytest.approx(0.25, rel=0.35)
        assert controller.job.cpu_rate_fraction == 0.25

    def test_none_policy_leaves_secondary_unrestricted(self, engine, kernel):
        spec = PerfIsoSpec(cpu_policy="none")
        controller = PerfIsoController(kernel, spec)
        controller.start()
        assert controller.job.cpu_affinity is None
        assert controller.job.cpu_rate_fraction is None


class TestKillSwitchAndRecovery:
    def test_kill_switch_lifts_restrictions(self, engine, kernel):
        controller = PerfIsoController(kernel, blind_spec(buffer_cores=2))
        bully = CpuBullyTenant(kernel, CpuBullySpec(threads=16, memory_bytes=1024))
        bully.start()
        controller.manage(bully)
        controller.start()
        engine.run(until=0.1)
        controller.disable()
        assert controller.job.cpu_affinity is None
        assert not controller.enabled
        engine.run(until=0.3)
        # The bully now gets the whole machine.
        assert kernel.idle_core_count() == 0

    def test_reenable_restores_isolation(self, engine, kernel):
        controller = PerfIsoController(kernel, blind_spec(buffer_cores=2))
        bully = CpuBullyTenant(kernel, CpuBullySpec(threads=16, memory_bytes=1024))
        bully.start()
        controller.manage(bully)
        controller.start()
        controller.disable()
        engine.run(until=0.1)
        controller.enable()
        engine.run(until=0.3)
        assert kernel.idle_core_count() >= 2

    def test_state_round_trip(self, engine, kernel):
        controller = PerfIsoController(kernel, blind_spec(buffer_cores=2))
        controller.start()
        engine.run(until=0.05)
        state = controller.state_dict()
        assert state["cpu_policy"] == "blind"
        fresh_kernel_job = controller.job.cpu_affinity
        controller.restore_state(state)
        assert controller.job.cpu_affinity == fresh_kernel_job

    @staticmethod
    def _fresh_kernel():
        """A brand-new machine + kernel, as after a controller crash/restart."""
        import numpy as np

        from repro.config.schema import MachineSpec, SchedulerSpec
        from repro.hardware.machine import Machine
        from repro.hostos.syscalls import Kernel
        from repro.simulation.engine import SimulationEngine

        fresh_engine = SimulationEngine()
        fresh_machine = Machine(
            fresh_engine,
            MachineSpec(sockets=1, cores_per_socket=4, threads_per_core=2),
            name="recovered",
            rng=np.random.default_rng(0),
        )
        return Kernel(fresh_engine, fresh_machine, SchedulerSpec())

    def test_restore_state_restores_update_counter(self, engine, kernel):
        """The serialised updates_applied counter survives crash recovery."""
        controller = PerfIsoController(kernel, blind_spec(buffer_cores=2))
        bully = CpuBullyTenant(kernel, CpuBullySpec(threads=16, memory_bytes=1024))
        bully.start()
        controller.manage(bully)
        controller.start()
        engine.run(until=0.1)
        state = controller.state_dict()
        saved_updates = state["updates_applied"]
        assert saved_updates >= 1

        recovered = PerfIsoController(self._fresh_kernel(), blind_spec(buffer_cores=2))
        assert recovered.updates_applied == 0
        recovered.restore_state(state)
        # The counter carries over, plus exactly one re-application of the
        # recovered core allocation.
        assert recovered.updates_applied == saved_updates + 1
        assert recovered.secondary_core_count == state["current_core_count"]

    def test_restore_state_counter_without_reapply(self, engine, kernel):
        """A disabled snapshot restores the counter without a new update."""
        controller = PerfIsoController(kernel, blind_spec(buffer_cores=2))
        controller.start()
        engine.run(until=0.05)
        controller.disable()
        state = controller.state_dict()
        recovered = PerfIsoController(self._fresh_kernel(), blind_spec())
        # Restoring a disabled snapshot must not apply any allocation.
        recovered.restore_state(state)
        assert recovered.updates_applied == state["updates_applied"]
        assert not recovered.enabled

    def test_update_spec_switches_policy(self, engine, kernel):
        controller = PerfIsoController(kernel, blind_spec())
        controller.start()
        controller.update_spec(
            PerfIsoSpec(cpu_policy="static_cores", static_cores=StaticCoreSpec(secondary_cores=3))
        )
        assert controller.secondary_core_count == 3
        assert controller.policy.name == "static_cores"
