"""Tests for the PerfIso controller service."""

import dataclasses
import math
import warnings

import pytest

from repro.config.schema import (
    BlindIsolationSpec,
    CpuBullySpec,
    CpuCycleSpec,
    IoThrottleSpec,
    MemoryGuardSpec,
    NetworkThrottleSpec,
    PerfIsoSpec,
    StaticCoreSpec,
)
from repro.core.controller import PerfIsoController
from repro.errors import IsolationError
from repro.hostos.process import TenantCategory
from repro.hostos.thread import cpu_phase
from repro.tenants.cpu_bully import CpuBullyTenant
from repro.units import GIB, MB, millis


def blind_spec(buffer_cores=2, poll_interval=millis(1)):
    return PerfIsoSpec(
        cpu_policy="blind",
        blind=BlindIsolationSpec(buffer_cores=buffer_cores),
        poll_interval=poll_interval,
    )


class TestLifecycle:
    def test_initial_allocation_applied_on_start(self, kernel):
        controller = PerfIsoController(kernel, blind_spec(buffer_cores=2))
        controller.start()
        assert controller.secondary_core_count == kernel.logical_cores - 2
        assert controller.secondary_affinity is not None

    def test_double_start_rejected(self, kernel):
        controller = PerfIsoController(kernel, blind_spec())
        controller.start()
        with pytest.raises(IsolationError):
            controller.start()

    def test_primary_never_managed(self, kernel):
        controller = PerfIsoController(kernel, blind_spec())
        primary = kernel.create_process("svc", TenantCategory.PRIMARY)
        with pytest.raises(IsolationError):
            controller.manage_process(primary)

    def test_manage_attaches_tenant_to_job(self, kernel):
        controller = PerfIsoController(kernel, blind_spec())
        bully = CpuBullyTenant(kernel, CpuBullySpec(threads=2, memory_bytes=1024))
        bully.start()
        controller.manage(bully)
        assert bully.process.job is controller.job


class TestBlindIsolationLoop:
    def test_buffer_maintained_under_load(self, engine, kernel):
        """With a saturating secondary, roughly `buffer` cores stay idle."""
        controller = PerfIsoController(kernel, blind_spec(buffer_cores=2))
        bully = CpuBullyTenant(kernel, CpuBullySpec(threads=16, memory_bytes=1024))
        bully.start()
        controller.manage(bully)
        controller.start()
        engine.run(until=0.2)
        assert kernel.idle_core_count() == pytest.approx(2, abs=1)
        assert controller.polls > 50
        assert controller.secondary_core_count <= kernel.logical_cores - 2

    def test_secondary_shrinks_when_primary_arrives(self, engine, kernel):
        controller = PerfIsoController(kernel, blind_spec(buffer_cores=2))
        bully = CpuBullyTenant(kernel, CpuBullySpec(threads=16, memory_bytes=1024))
        bully.start()
        controller.manage(bully)
        controller.start()
        engine.run(until=0.05)
        allocation_before = controller.secondary_core_count
        primary = kernel.create_process("svc", TenantCategory.PRIMARY)
        for _ in range(4):
            kernel.spawn_thread(primary, [cpu_phase(math.inf)])
        engine.run(until=0.15)
        assert controller.secondary_core_count < allocation_before

    def test_secondary_grows_back_when_primary_leaves(self, engine, kernel):
        controller = PerfIsoController(kernel, blind_spec(buffer_cores=2))
        bully = CpuBullyTenant(kernel, CpuBullySpec(threads=16, memory_bytes=1024))
        bully.start()
        controller.manage(bully)
        controller.start()
        primary = kernel.create_process("svc", TenantCategory.PRIMARY)
        threads = [kernel.spawn_thread(primary, [cpu_phase(math.inf)]) for _ in range(4)]
        engine.run(until=0.1)
        squeezed = controller.secondary_core_count
        for thread in threads:
            kernel.terminate_thread(thread)
        engine.run(until=0.2)
        assert controller.secondary_core_count > squeezed

    def test_poll_update_split(self, engine, kernel):
        """Polling happens every interval; updates only when the target moves."""
        controller = PerfIsoController(kernel, blind_spec(buffer_cores=2))
        bully = CpuBullyTenant(kernel, CpuBullySpec(threads=16, memory_bytes=1024))
        bully.start()
        controller.manage(bully)
        controller.start()
        engine.run(until=0.3)
        assert controller.polls > controller.updates_applied


class TestOtherPolicies:
    def test_static_cores_applied(self, engine, kernel):
        spec = PerfIsoSpec(cpu_policy="static_cores", static_cores=StaticCoreSpec(secondary_cores=2))
        controller = PerfIsoController(kernel, spec)
        bully = CpuBullyTenant(kernel, CpuBullySpec(threads=8, memory_bytes=1024))
        bully.start()
        controller.manage(bully)
        controller.start()
        horizon = kernel.scheduler.spec.quantum * 2
        engine.run(until=horizon)
        assert controller.secondary_core_count == 2
        assert bully.cpu_seconds() == pytest.approx(horizon * 2, rel=0.1)

    def test_cpu_cycles_applied(self, engine, kernel):
        spec = PerfIsoSpec(cpu_policy="cpu_cycles", cpu_cycles=CpuCycleSpec(cpu_fraction=0.25))
        controller = PerfIsoController(kernel, spec)
        bully = CpuBullyTenant(kernel, CpuBullySpec(threads=8, memory_bytes=1024))
        bully.start()
        controller.manage(bully)
        controller.start()
        engine.run(until=0.4)
        share = bully.cpu_seconds() / (0.4 * kernel.logical_cores)
        assert share == pytest.approx(0.25, rel=0.35)
        assert controller.job.cpu_rate_fraction == 0.25

    def test_none_policy_leaves_secondary_unrestricted(self, engine, kernel):
        spec = PerfIsoSpec(cpu_policy="none")
        controller = PerfIsoController(kernel, spec)
        controller.start()
        assert controller.job.cpu_affinity is None
        assert controller.job.cpu_rate_fraction is None


class TestKillSwitchAndRecovery:
    def test_kill_switch_lifts_restrictions(self, engine, kernel):
        controller = PerfIsoController(kernel, blind_spec(buffer_cores=2))
        bully = CpuBullyTenant(kernel, CpuBullySpec(threads=16, memory_bytes=1024))
        bully.start()
        controller.manage(bully)
        controller.start()
        engine.run(until=0.1)
        controller.disable()
        assert controller.job.cpu_affinity is None
        assert not controller.enabled
        engine.run(until=0.3)
        # The bully now gets the whole machine.
        assert kernel.idle_core_count() == 0

    def test_reenable_restores_isolation(self, engine, kernel):
        controller = PerfIsoController(kernel, blind_spec(buffer_cores=2))
        bully = CpuBullyTenant(kernel, CpuBullySpec(threads=16, memory_bytes=1024))
        bully.start()
        controller.manage(bully)
        controller.start()
        controller.disable()
        engine.run(until=0.1)
        controller.enable()
        engine.run(until=0.3)
        assert kernel.idle_core_count() >= 2

    def test_state_round_trip(self, engine, kernel):
        controller = PerfIsoController(kernel, blind_spec(buffer_cores=2))
        controller.start()
        engine.run(until=0.05)
        state = controller.state_dict()
        assert state["cpu_policy"] == "blind"
        fresh_kernel_job = controller.job.cpu_affinity
        controller.restore_state(state)
        assert controller.job.cpu_affinity == fresh_kernel_job

    @staticmethod
    def _fresh_kernel():
        """A brand-new machine + kernel, as after a controller crash/restart."""
        import numpy as np

        from repro.config.schema import MachineSpec, SchedulerSpec
        from repro.hardware.machine import Machine
        from repro.hostos.syscalls import Kernel
        from repro.simulation.engine import SimulationEngine

        fresh_engine = SimulationEngine()
        fresh_machine = Machine(
            fresh_engine,
            MachineSpec(sockets=1, cores_per_socket=4, threads_per_core=2),
            name="recovered",
            rng=np.random.default_rng(0),
        )
        return Kernel(fresh_engine, fresh_machine, SchedulerSpec())

    def test_restore_state_restores_update_counter(self, engine, kernel):
        """The serialised updates_applied counter survives crash recovery."""
        controller = PerfIsoController(kernel, blind_spec(buffer_cores=2))
        bully = CpuBullyTenant(kernel, CpuBullySpec(threads=16, memory_bytes=1024))
        bully.start()
        controller.manage(bully)
        controller.start()
        engine.run(until=0.1)
        state = controller.state_dict()
        saved_updates = state["updates_applied"]
        assert saved_updates >= 1

        recovered = PerfIsoController(self._fresh_kernel(), blind_spec(buffer_cores=2))
        assert recovered.updates_applied == 0
        recovered.restore_state(state)
        # The counter carries over, plus exactly one re-application of the
        # recovered core allocation.
        assert recovered.updates_applied == saved_updates + 1
        assert recovered.secondary_core_count == state["current_core_count"]

    def test_restore_state_counter_without_reapply(self, engine, kernel):
        """A disabled snapshot restores the counter without a new update."""
        controller = PerfIsoController(kernel, blind_spec(buffer_cores=2))
        controller.start()
        engine.run(until=0.05)
        controller.disable()
        state = controller.state_dict()
        recovered = PerfIsoController(self._fresh_kernel(), blind_spec())
        # Restoring a disabled snapshot must not apply any allocation.
        recovered.restore_state(state)
        assert recovered.updates_applied == state["updates_applied"]
        assert not recovered.enabled

    def test_update_spec_switches_policy(self, engine, kernel):
        controller = PerfIsoController(kernel, blind_spec())
        controller.start()
        controller.update_spec(
            PerfIsoSpec(cpu_policy="static_cores", static_cores=StaticCoreSpec(secondary_cores=3))
        )
        assert controller.secondary_core_count == 3
        assert controller.policy.name == "static_cores"


class TestRuntimeReconfiguration:
    """A config push must reconfigure *every* mechanism, not just the policy."""

    def _started_controller(self, kernel, spec=None):
        controller = PerfIsoController(kernel, spec if spec is not None else blind_spec())
        batch = kernel.create_process("batch", TenantCategory.SECONDARY)
        controller.manage_process(batch)
        controller.start()
        return controller

    def test_update_spec_swaps_all_sub_specs(self, engine, kernel):
        controller = self._started_controller(kernel)
        pushed = PerfIsoSpec(
            cpu_policy="blind",
            blind=BlindIsolationSpec(buffer_cores=2),
            poll_interval=millis(1),
            io_throttle=IoThrottleSpec(
                secondary_bandwidth_limit=10 * MB, secondary_iops_limit=64.0
            ),
            memory_guard=MemoryGuardSpec(reserved_bytes=8 * GIB),
            network_throttle=NetworkThrottleSpec(secondary_bandwidth_limit=25 * MB),
        )
        controller.update_spec(pushed)
        assert controller.io_throttler.spec.secondary_iops_limit == 64.0
        assert controller.memory_guard.spec.reserved_bytes == 8 * GIB
        assert controller.network_throttle.spec.secondary_bandwidth_limit == 25 * MB

    def test_update_spec_reapplies_io_caps(self, engine, kernel):
        controller = self._started_controller(kernel)
        (state,) = [
            s
            for s in controller.io_throttler.states()
            if s.process.category == TenantCategory.SECONDARY
        ]
        assert state.applied_bandwidth_cap == 100 * MB  # the default cap
        controller.update_spec(
            dataclasses.replace(
                blind_spec(),
                io_throttle=IoThrottleSpec(
                    secondary_bandwidth_limit=10 * MB, secondary_iops_limit=64.0
                ),
            )
        )
        assert state.applied_bandwidth_cap == 10 * MB
        assert state.applied_iops_cap == 64.0

    def test_update_spec_reapplies_network_limit(self, engine, kernel):
        controller = self._started_controller(kernel)
        assert controller.network_throttle.active
        controller.update_spec(
            dataclasses.replace(
                blind_spec(),
                network_throttle=NetworkThrottleSpec(secondary_bandwidth_limit=25 * MB),
            )
        )
        nic = kernel.machine.nic
        assert controller.network_throttle.active
        assert nic._low_rate_limit == 25 * MB

    def test_update_spec_disabled_push_acts_as_kill_switch(self, engine, kernel):
        controller = self._started_controller(kernel)
        assert controller.secondary_affinity is not None
        controller.update_spec(dataclasses.replace(blind_spec(), enabled=False))
        assert not controller.enabled
        assert controller.secondary_affinity is None
        assert controller.secondary_core_count is None
        (state,) = [
            s
            for s in controller.io_throttler.states()
            if s.process.category == TenantCategory.SECONDARY
        ]
        assert state.applied_bandwidth_cap is None
        assert not controller.network_throttle.active

    def test_update_spec_reenabling_push_restores_isolation(self, engine, kernel):
        controller = self._started_controller(kernel)
        controller.update_spec(dataclasses.replace(blind_spec(), enabled=False))
        controller.update_spec(blind_spec(buffer_cores=2))
        assert controller.enabled
        assert controller.secondary_core_count == kernel.logical_cores - 2
        assert controller.network_throttle.active

    def test_update_spec_on_stopped_controller_defers_application(self, engine, kernel):
        controller = PerfIsoController(kernel, blind_spec())
        controller.update_spec(
            PerfIsoSpec(cpu_policy="static_cores", static_cores=StaticCoreSpec(secondary_cores=3))
        )
        # Nothing applied yet (not running), but the spec and policy swapped.
        assert controller.secondary_core_count is None
        assert controller.policy.name == "static_cores"
        controller.start()
        assert controller.secondary_core_count == 3


class TestRestoreUnrestrictedSnapshot:
    """Regression: an enabled snapshot with no core count means 'unrestricted'.

    The old restore path did nothing in that case, leaving the replacement
    controller's own initial restriction in place — recovery silently
    changed the machine's isolation state.
    """

    def test_unrestricted_snapshot_lifts_replacement_restriction(self, engine, kernel):
        original = PerfIsoController(kernel, PerfIsoSpec(cpu_policy="none"))
        original.start()
        engine.run(until=0.05)
        state = original.state_dict()
        assert state["enabled"] and state["current_core_count"] is None

        recovered = PerfIsoController(
            TestKillSwitchAndRecovery._fresh_kernel(), blind_spec(buffer_cores=2)
        )
        recovered.start()  # applies blind's initial restriction
        assert recovered.secondary_affinity is not None
        saved = recovered.updates_applied
        with pytest.warns(RuntimeWarning, match="cpu_policy"):
            recovered.restore_state(state)
        assert recovered.secondary_affinity is None
        assert recovered.secondary_core_count is None
        assert recovered.job.cpu_rate_fraction is None
        # The restore counted from the snapshot counter, plus the one lift.
        assert recovered.updates_applied == state["updates_applied"] + 1
        assert saved >= 1  # the initial restriction genuinely happened

    def test_cpu_rate_snapshot_restores_the_rate(self, engine, kernel):
        spec = PerfIsoSpec(cpu_policy="cpu_cycles", cpu_cycles=CpuCycleSpec(cpu_fraction=0.25))
        original = PerfIsoController(kernel, spec)
        original.start()
        state = original.state_dict()
        assert state["cpu_rate"] == 0.25

        recovered = PerfIsoController(TestKillSwitchAndRecovery._fresh_kernel(), spec)
        recovered.restore_state(state)
        assert recovered.job.cpu_rate_fraction == 0.25
        assert recovered.secondary_affinity is None

    def test_matching_policy_restore_does_not_warn(self, engine, kernel):
        controller = PerfIsoController(kernel, blind_spec(buffer_cores=2))
        controller.start()
        engine.run(until=0.05)
        state = controller.state_dict()
        recovered = PerfIsoController(
            TestKillSwitchAndRecovery._fresh_kernel(), blind_spec(buffer_cores=2)
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            recovered.restore_state(state)
        assert recovered.secondary_core_count == state["current_core_count"]

    def test_autopilot_recovery_applies_unrestricted_snapshot(self, engine, kernel):
        """The Autopilot crash/recover cycle ends with the snapshot honoured."""
        from repro.cluster.autopilot import Autopilot, ManagedService

        original = PerfIsoController(kernel, PerfIsoSpec(cpu_policy="none"))
        holder = {"controller": original}
        autopilot = Autopilot()
        autopilot.register(
            ManagedService(
                name="perfiso",
                machine="m0",
                start=lambda: holder["controller"].start(),
                stop=lambda: holder["controller"].stop(),
                save_state=lambda: holder["controller"].state_dict(),
                restore_state=lambda s: holder["controller"].restore_state(s),
            )
        )
        autopilot.start("m0", "perfiso")
        engine.run(until=0.05)
        autopilot.checkpoint("m0", "perfiso")

        # The crash: the replacement instance is configured blind, so its
        # start() pins the secondary — recovery must lift that again.
        replacement = PerfIsoController(
            TestKillSwitchAndRecovery._fresh_kernel(), blind_spec(buffer_cores=2)
        )
        holder["controller"] = replacement
        with pytest.warns(RuntimeWarning, match="cpu_policy"):
            autopilot.crash_and_recover("m0", "perfiso")
        assert autopilot.service("m0", "perfiso").restarts == 1
        assert replacement.secondary_affinity is None
        assert replacement.secondary_core_count is None
