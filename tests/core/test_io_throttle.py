"""Tests for the DWRR I/O throttler."""

import pytest

from repro.config.schema import DiskBullySpec, IoThrottleSpec
from repro.core.io_throttle import DwrrIoThrottler
from repro.errors import IsolationError
from repro.hostos.process import TenantCategory


@pytest.fixture
def throttler(kernel):
    return DwrrIoThrottler(kernel, IoThrottleSpec(adjust_interval=0.1, window=0.5))


class TestRegistration:
    def test_weights_default_to_tenant_class(self, kernel, throttler):
        primary = kernel.create_process("svc", TenantCategory.PRIMARY)
        secondary = kernel.create_process("batch", TenantCategory.SECONDARY)
        p_state = throttler.register(primary)
        s_state = throttler.register(secondary)
        assert p_state.weight > s_state.weight
        assert p_state.guaranteed_iops > 0
        assert s_state.guaranteed_iops == 0

    def test_secondary_gets_static_cap_on_registration(self, kernel, throttler):
        secondary = kernel.create_process("batch", TenantCategory.SECONDARY)
        throttler.register(secondary)
        bandwidth, _ = kernel.iostack.get_limits("batch", "hdd")
        assert bandwidth == pytest.approx(IoThrottleSpec().secondary_bandwidth_limit)

    def test_double_registration_is_idempotent(self, kernel, throttler):
        secondary = kernel.create_process("batch", TenantCategory.SECONDARY)
        first = throttler.register(secondary)
        second = throttler.register(secondary)
        assert first is second

    def test_invalid_weight_rejected(self, kernel, throttler):
        process = kernel.create_process("batch", TenantCategory.SECONDARY)
        with pytest.raises(IsolationError):
            throttler.register(process, weight=0)


class TestAdaptiveBehaviour:
    def _run_with_traffic(self, engine, kernel, throttler, primary_iops_starved: bool):
        """Generate secondary HDD traffic, optionally starving the primary."""
        from repro.tenants.disk_bully import DiskBullyTenant
        import numpy as np

        primary = kernel.create_process("svc", TenantCategory.PRIMARY)
        bully = DiskBullyTenant(kernel, DiskBullySpec(threads=4, memory_bytes=1024),
                                rng=np.random.default_rng(1))
        bully.start()
        throttler.register(primary)
        throttler.register(bully.process)
        throttler.start()
        if primary_iops_starved:
            # The primary issues a trickle of requests that complete slowly
            # because the bully saturates the volume.
            def issue_primary():
                kernel.iostack.submit(primary, "hdd", "write", 64 * 1024)
                engine.schedule(0.05, issue_primary)

            issue_primary()
        engine.run(until=2.0)
        return bully

    def test_measurement_tracks_iops(self, engine, kernel, throttler):
        self._run_with_traffic(engine, kernel, throttler, primary_iops_starved=False)
        states = {s.process.name: s for s in throttler.states()}
        assert states["disk-bully"].current_iops > 0
        assert throttler.adjustments > 5

    def test_demand_proportional_to_weight(self, engine, kernel, throttler):
        self._run_with_traffic(engine, kernel, throttler, primary_iops_starved=True)
        states = {s.process.name: s for s in throttler.states()}
        assert states["svc"].demand > states["disk-bully"].demand

    def test_starved_primary_tightens_secondary_cap(self, engine, kernel, throttler):
        self._run_with_traffic(engine, kernel, throttler, primary_iops_starved=True)
        states = {s.process.name: s for s in throttler.states()}
        ceiling = IoThrottleSpec().secondary_bandwidth_limit
        assert throttler.tighten_events > 0
        assert states["disk-bully"].applied_bandwidth_cap < ceiling

    def test_caps_never_fall_below_floor(self, engine, kernel, throttler):
        self._run_with_traffic(engine, kernel, throttler, primary_iops_starved=True)
        states = {s.process.name: s for s in throttler.states()}
        assert states["disk-bully"].applied_bandwidth_cap >= DwrrIoThrottler.MIN_BANDWIDTH

    def test_disabled_spec_never_starts(self, kernel):
        throttler = DwrrIoThrottler(kernel, IoThrottleSpec(enabled=False))
        throttler.start()
        assert throttler.adjustments == 0
