"""Tests for egress throttling and the buffer-core profiler."""

import pytest

from repro.config.schema import IndexServeSpec, NetworkThrottleSpec
from repro.core.network_throttle import NetworkThrottle
from repro.core.profiling import BufferCoreProfiler
from repro.errors import IsolationError
from repro.hostos.process import TenantCategory
from repro.units import MB


class TestNetworkThrottle:
    def test_start_applies_rate_limit(self, kernel):
        throttle = NetworkThrottle(kernel, NetworkThrottleSpec(secondary_bandwidth_limit=10 * MB))
        throttle.start()
        assert throttle.active
        # The NIC now paces a stream of large low-priority transfers.
        finishes = []
        for _ in range(3):
            kernel.machine.nic.send("bulk", 5 * MB, priority=kernel.machine.nic.LOW,
                                    callback=lambda: finishes.append(kernel.now))
        kernel.engine.run()
        assert finishes[-1] > 0.8

    def test_priority_mapping(self, kernel):
        throttle = NetworkThrottle(kernel, NetworkThrottleSpec())
        throttle.start()
        assert throttle.priority_for(TenantCategory.SECONDARY) == kernel.machine.nic.LOW
        assert throttle.priority_for(TenantCategory.PRIMARY) == kernel.machine.nic.HIGH

    def test_disabled_spec_keeps_high_priority(self, kernel):
        throttle = NetworkThrottle(kernel, NetworkThrottleSpec(enabled=False))
        throttle.start()
        assert not throttle.active
        assert throttle.priority_for(TenantCategory.SECONDARY) == kernel.machine.nic.HIGH

    def test_stop_removes_limit(self, kernel):
        throttle = NetworkThrottle(kernel, NetworkThrottleSpec(secondary_bandwidth_limit=1 * MB))
        throttle.start()
        throttle.stop()
        finishes = []
        for _ in range(3):
            kernel.machine.nic.send("bulk", 5 * MB, priority=kernel.machine.nic.LOW,
                                    callback=lambda: finishes.append(kernel.now))
        kernel.engine.run()
        assert finishes[-1] < 0.1


class TestBufferCoreProfiler:
    def test_recommendation_in_sane_range(self):
        profiler = BufferCoreProfiler(IndexServeSpec(), seed=3)
        profile = profiler.profile(peak_qps=4000, duration=2.0)
        # The paper observes bursts up to 15 ready threads and settles on 8
        # buffer cores; the profiler should land in the same neighbourhood.
        assert 2 <= profile.recommended_buffer_cores <= 16
        assert profile.max_burst >= profile.recommended_buffer_cores

    def test_profile_statistics_consistent(self):
        profile = BufferCoreProfiler(IndexServeSpec(), seed=3).profile(peak_qps=3000, duration=1.0)
        assert profile.p50_burst <= profile.p99_burst <= profile.p999_burst <= profile.max_burst
        assert sum(profile.histogram.values()) > 0

    def test_deterministic_for_seed(self):
        a = BufferCoreProfiler(IndexServeSpec(), seed=5).profile(peak_qps=2000, duration=1.0)
        b = BufferCoreProfiler(IndexServeSpec(), seed=5).profile(peak_qps=2000, duration=1.0)
        assert a.recommended_buffer_cores == b.recommended_buffer_cores
        assert a.max_burst == b.max_burst

    def test_higher_load_needs_no_smaller_buffer(self):
        low = BufferCoreProfiler(IndexServeSpec(), seed=5).profile(peak_qps=500, duration=2.0)
        high = BufferCoreProfiler(IndexServeSpec(), seed=5).profile(peak_qps=8000, duration=2.0)
        assert high.recommended_buffer_cores >= low.recommended_buffer_cores

    def test_invalid_parameters_rejected(self):
        profiler = BufferCoreProfiler(IndexServeSpec(), seed=1)
        with pytest.raises(IsolationError):
            profiler.profile(peak_qps=0)
        with pytest.raises(IsolationError):
            BufferCoreProfiler(IndexServeSpec(), window=0)
