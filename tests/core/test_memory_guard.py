"""Tests for the memory guard."""

import pytest

from repro.config.schema import MemoryGuardSpec
from repro.core.memory_guard import MemoryGuard
from repro.errors import IsolationError
from repro.hostos.process import TenantCategory
from repro.units import GIB


@pytest.fixture
def job(kernel):
    return kernel.create_job_object("secondary")


def make_guard(kernel, job, reserved=2 * GIB, interval=0.1, on_kill=None):
    return MemoryGuard(kernel, MemoryGuardSpec(reserved_bytes=reserved, check_interval=interval),
                       job, on_kill=on_kill)


class TestMemoryGuard:
    def test_no_kill_when_memory_plentiful(self, engine, kernel, job):
        process = kernel.create_process("batch", TenantCategory.SECONDARY, memory_bytes=1 * GIB)
        job.assign(process)
        guard = make_guard(kernel, job)
        guard.start()
        engine.run(until=0.5)
        assert guard.kills == []
        assert process.alive

    def test_kills_secondary_under_pressure(self, engine, kernel, job):
        # The machine has 128 GiB; the primary takes 120 and the secondary 7,
        # leaving less than the 2 GiB reserve.
        kernel.create_process("svc", TenantCategory.PRIMARY, memory_bytes=120 * GIB)
        batch = kernel.create_process("batch", TenantCategory.SECONDARY, memory_bytes=7 * GIB)
        job.assign(batch)
        killed = []
        guard = make_guard(kernel, job, on_kill=lambda p: killed.append(p.name))
        guard.start()
        engine.run(until=0.5)
        assert killed == ["batch"]
        assert not batch.alive
        assert kernel.free_memory_bytes() >= 2 * GIB

    def test_kills_largest_consumer_first(self, engine, kernel, job):
        kernel.create_process("svc", TenantCategory.PRIMARY, memory_bytes=118 * GIB)
        small = kernel.create_process("small", TenantCategory.SECONDARY, memory_bytes=2 * GIB)
        large = kernel.create_process("large", TenantCategory.SECONDARY, memory_bytes=7 * GIB)
        job.assign(small)
        job.assign(large)
        guard = make_guard(kernel, job)
        guard.start()
        engine.run(until=0.5)
        assert not large.alive
        assert small.alive

    def test_enforces_job_memory_limit(self, engine, kernel, job):
        batch = kernel.create_process("batch", TenantCategory.SECONDARY, memory_bytes=8 * GIB)
        job.assign(batch)
        guard = make_guard(kernel, job)
        guard.set_job_memory_limit(4 * GIB)
        guard.start()
        engine.run(until=0.5)
        assert not batch.alive
        assert guard.kills == ["batch"]

    def test_invalid_job_limit_rejected(self, kernel, job):
        guard = make_guard(kernel, job)
        with pytest.raises(IsolationError):
            guard.set_job_memory_limit(0)

    def test_disabled_guard_never_checks(self, engine, kernel, job):
        guard = MemoryGuard(kernel, MemoryGuardSpec(enabled=False), job)
        guard.start()
        engine.run(until=0.5)
        assert guard.checks == 0

    def test_stop_halts_checks(self, engine, kernel, job):
        guard = make_guard(kernel, job)
        guard.start()
        engine.run(until=0.25)
        guard.stop()
        checks = guard.checks
        engine.run(until=1.0)
        assert guard.checks == checks
